//! `oracle-cli` — run the ORACLE load-distribution simulator from the
//! command line.
//!
//! ```text
//! oracle-cli run --topology grid:10 --strategy cwn:9x1 --workload fib:15 [--seed N] [--csv] [--series]
//! oracle-cli compare --topology grid:10 --workload fib:15 [--seed N]
//! oracle-cli topo-info grid:20 dlm:20 hypercube:7
//! oracle-cli list
//! ```

use std::path::Path;
use std::process::ExitCode;

use oracle::builder::paper_strategies;
use oracle::checkpoint::CheckpointError;
use oracle::prelude::*;
use oracle::table::{f1, f2};

/// A classified command failure: `kind` is the machine-readable class in
/// the one-line stderr summary (`error[kind]: message`), `code` the
/// process exit code.
///
/// Exit codes: 0 success; 2 the simulation itself failed (invariant
/// violation, unplanned goal loss, stall, stagnation, event-limit); 3 the
/// run never started or could not be recorded (bad flags/specs/plans,
/// unreadable files, bad checkpoints).
#[derive(Debug)]
struct Failure {
    kind: &'static str,
    code: u8,
    message: String,
}

impl Failure {
    fn config(message: impl Into<String>) -> Failure {
        Failure {
            kind: "config",
            code: 3,
            message: message.into(),
        }
    }

    fn io(message: impl Into<String>) -> Failure {
        Failure {
            kind: "io",
            code: 3,
            message: message.into(),
        }
    }

    /// Prefix the message with the run label that failed.
    fn context(mut self, label: &str) -> Failure {
        self.message = format!("{label}: {}", self.message);
        self
    }
}

/// Flag/spec parse errors arriving as bare strings are configuration
/// errors.
impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure::config(message)
    }
}

/// Classify a simulation error by outcome class.
fn sim_failure(e: SimError) -> Failure {
    let kind = match &e {
        SimError::InvariantViolation { .. } => "invariant",
        SimError::GoalsLost { .. } => "goals-lost",
        SimError::Stalled { .. } => "stalled",
        SimError::Stagnation { .. } => "stagnation",
        SimError::EventLimit { .. } => "event-limit",
        SimError::InvalidConfig(_) => return Failure::config(e.to_string()),
    };
    Failure {
        kind,
        code: 2,
        message: e.to_string(),
    }
}

fn checkpoint_failure(e: CheckpointError) -> Failure {
    match e {
        CheckpointError::Sim(e) => sim_failure(e),
        CheckpointError::Io(e) => Failure::io(e.to_string()),
        CheckpointError::Format(m) => Failure {
            kind: "checkpoint",
            code: 3,
            message: m,
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(3);
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "experiment" => cmd_experiment(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "chaos" => cmd_chaos(&args[1..]),
        "trace-check" => cmd_trace_check(&args[1..]),
        "topo-info" => cmd_topo_info(&args[1..]),
        "list" => {
            print_list();
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(Failure::config(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("error[{}]: {}", f.kind, f.message);
            ExitCode::from(f.code)
        }
    }
}

const USAGE: &str = "\
oracle-cli — ORACLE load-distribution simulator (Kale, ICPP 1988 reproduction)

commands:
  run       --topology T --strategy S --workload W [--seed N] [--csv]
            [--shards N|auto] [--no-coprocessor] [--series]
            [--per-pe] [--state-mode auto|dense|sparse] [--load-period T]
            [--trace N] [--trace-out FILE]
            [--trace-format jsonl|chrome] [--trace-last N]
            [--series-out FILE] [--profile] [--heatmap FILE.ppm]
            [--faults PLAN|@FILE] [--audit-every N]
            [--checkpoint-every T [--checkpoint-dir DIR]] [--resume FILE]
            [--arrivals SPEC] [--duration T] [--warmup T]
            [--deadline T] [--retry MAXxBASE] [--admission POLICY]
            [--breaker COOLDOWN]
            run one simulation and print its report;
            --arrivals SPEC switches to open-system traffic: requests
            arrive per SPEC, each spawning one task tree of --workload,
            for --duration sim units (default 20000) with the first
            --warmup units (default duration/10) excluded from latency
            statistics; `--workload open:ARRIVAL/WORKLOAD` is equivalent;
            --deadline T abandons requests whose sojourn exceeds T (a
            completion past it is a dead loss, not a success);
            --retry MAXxBASE re-injects requests lost to crashes or link
            faults, up to MAX times with exponential backoff from BASE
            (jittered, from a dedicated RNG stream — deterministic);
            --admission POLICY sheds arrivals at the door: queue:N (total
            queued goals), util:F (mean utilization threshold), or
            bucket:RATExBURST (token bucket, RATE per 1000 units);
            --breaker COOLDOWN stops routing into a crashed neighborhood
            until COOLDOWN units after the region recovers;
            --trace-out exports the event trace (default format jsonl;
            chrome produces a Perfetto-loadable trace_event file);
            --trace-last N ring-buffers the *last* N events instead of
            keeping the first --trace N;
            --series-out writes the per-PE utilization series as CSV;
            --profile prints engine counters (per-event-kind counts and
            wall times, queue-depth high-water mark, control tags);
            --faults @FILE loads a plan file (blank/# lines ignored, one
            or more `+`-separated terms per line);
            --shards N splits the single run across N conservative-sync
            workers (`auto` = all cores) with bit-identical results;
            counts above the machine's PE count (or the engine's cap of
            64 workers) are clamped, so no worker ever owns nothing;
            configurations the sharded engine cannot split (tracing,
            faults, open traffic, co-processor mode) run sequentially,
            with a stderr note naming the reason;
            --no-coprocessor models software message routing (PEs pay
            the routing cost themselves) — required for --shards to
            engage, since co-processor deliveries run strategy code at
            channel timestamps;
            --per-pe emits the O(num-PEs) per-PE report vectors (off by
            default: headline aggregates are O(1) in PE count);
            --state-mode forces the dense or sparse per-PE/channel state
            representation (auto, the default, goes sparse past 64 Ki
            PEs; both produce bit-identical reports);
            --load-period T sets the periodic load-broadcast period
            (default 40; 0 disables it, leaving piggy-backed load info
            only — each broadcast round costs O(num-PEs) events, which
            dominates the event stream on very large machines);
            --audit-every N checks runtime invariants every N events;
            --checkpoint-every T writes an atomic checkpoint every T sim
            time units (to --checkpoint-dir, default ./checkpoints);
            --resume FILE continues a checkpointed run to a bit-identical
            final report (config is embedded; spec flags are not needed)
  trace-check FILE [--format jsonl|chrome]
            validate an exported trace file (well-formed JSON, required
            header fields, timestamps monotone per track); the format is
            sniffed from the file unless --format is given
  chaos     [--cases N] [--seed N] [--threads N] [--stall-secs S]
            [--audit-every N] [--out DIR]
            run a seeded chaos-fuzzing sweep (random fault plans thrown at
            random runs, auditor on, each case under a panic catcher and
            watchdog); shrunk reproducers are written to DIR; exits 2 if
            any case fails
  compare   --topology T --workload W [--seed N]
            run CWN vs the Gradient Model with the paper's parameters
  batch FILE [--csv] [--threads N] [--profile]
            run a suite file (lines of:
            TOPOLOGY STRATEGY WORKLOAD [seed=N] [faults=PLAN]
            [arrivals=SPEC] [duration=T] [warmup=T] [deadline=T]
            [retry=MAXxBASE] [admission=POLICY] [breaker=COOLDOWN]);
            --threads caps the worker pool (default: all cores; results
            are identical at any thread count);
            --profile profiles every run and prints the merged roll-up
  experiment NAME [--quick] [--seed N] [--threads N]
            regenerate a paper table/figure: table1 | table2 | table3 |
            plots-dc-grid | plots-dc-dlm | plots-fib | plots-time-grid |
            plots-time-dlm | appendix | ablations |
            resilience [--json] (fault-injection extension) |
            capacity [--json] (open-traffic extension: binary-search the
            max sustainable Poisson arrival rate per strategy x topology
            holding a p99 sojourn target) |
            degradation [--json] [--check] (overload extension: goodput
            under overload x fault intensity, unprotected vs the full
            deadline+retry+admission+breaker stack; --check additionally
            asserts goodput degrades monotonically and every run
            conserves arrivals, exiting 2 on violation)
  topo-info T [T ...] [--dot]
            print PEs, channels, diameter, mean distance — or Graphviz DOT
  list      list the available spec grammars

spec grammars:
  topology: grid:10 | grid:4x6 | torus:8x8 | dlm:10 | dlm:5x20x20 |
            hypercube:7 | kary:4x3 | tree:2x5 | ring:16 | complete:8 |
            star:9 | bus:6
  strategy: cwn:RADIUSxHORIZON | gm:LWMxHWMxINTERVAL | acwn:RxHxSATxREDIST |
            local | random:HOPS | rr | steal[:RETRY] |
            diffusion[:INTERVALxTHRESHOLDxMAX] | global
  workload: fib:18 | dc:4181 | dc:1x4181 | lopsided:BUDGETxSKEW% |
            random:BUDGETxMAXCHILDxGRAINxSEED | cyclic:PHASESxWIDTHxLEAVES |
            tak:18x12x6 | open:ARRIVAL/WORKLOAD
  arrivals: PROCESS[@EDGES] where PROCESS is poisson:RATE |
            burst:HIxLOxONxOFF | diurnal:PEAKxPERIOD | trace:PATH
            (rates are arrivals per 1000 time units) and EDGES is
            all | root | a comma-separated PE list
  faults:   `+`-separated terms of crash:PE@T | link:CH@DOWN..UP | loss:P% |
            slow:PE@FROM..UNTILxFACTOR | recover:TIMEOUTxRETRIES | none

parallelism precedence (each resolved per command invocation):
  --threads N   batch worker pool; flag > default (all cores). 0 rejected:
                \"--threads N (N >= 1; omit the flag for auto)\"
  --shards N    per-run sharded engine; flag > default (1 = sequential).
                `auto` = all cores; clamped to min(PE count, 64);
                ineligible runs fall back untouched.
  The two compose: each batch worker may itself run sharded.

exit codes: 0 success (saturation is a measured outcome, not a failure) |
            2 simulation failed (invariant violation, goals lost, stall,
            …) | 3 configuration or I/O error | 4 overloaded (admission
            control shed the majority of arrivals) | 5 deadline exhausted
            (no request ever completed within its deadline)
            failures print one line to stderr: error[CLASS]: message";

/// Pull `--flag value` pairs and boolean flags out of an argument list.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn value_of(&self, flag: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    fn parse<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.value_of(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("{flag} {v:?}: {e}")),
        }
    }
}

/// Apply the shared `--threads N` flag: cap the worker pool every batch in
/// this process uses. Thread count changes wall clock only, never results.
fn apply_threads(flags: &Flags) -> Result<(), String> {
    match flags.value_of("--threads") {
        None => oracle::runner::clear_default_threads(),
        Some(v) => {
            let threads: usize = v.parse().map_err(|e| format!("--threads {v:?}: {e}"))?;
            if threads == 0 {
                return Err(format!(
                    "--threads must be at least 1 ({})",
                    oracle::runner::THREADS_GRAMMAR
                ));
            }
            oracle::runner::set_default_threads(threads);
        }
    }
    Ok(())
}

/// Apply the shared `--shards N|auto` flag: split each single run across N
/// conservative-sync workers (`auto` = all physical cores). Results are
/// bit-identical at any shard count; ineligible configurations (tracing,
/// faults, open traffic, co-processor mode, …) fall back to the
/// sequential engine transparently.
fn apply_shards(flags: &Flags) -> Result<(), String> {
    match flags.value_of("--shards") {
        None => oracle::runner::clear_default_shards(),
        Some("auto") => oracle::runner::set_default_shards(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        ),
        Some(v) => {
            let shards: usize = v.parse().map_err(|e| format!("--shards {v:?}: {e}"))?;
            if shards == 0 {
                return Err(
                    "--shards must be at least 1, or `auto` (1 = sequential engine)".into(),
                );
            }
            oracle::runner::set_default_shards(shards);
        }
    }
    Ok(())
}

/// Resolve `--faults`: a plan string, or `@FILE` naming a plan file whose
/// non-comment lines are joined with `+` (so a file may list one term per
/// line — the format chaos reproducers are written in).
fn parse_faults_flag(flags: &Flags) -> Result<oracle::model::FaultPlan, Failure> {
    let Some(value) = flags.value_of("--faults") else {
        return Ok(oracle::model::FaultPlan::none());
    };
    let text = match value.strip_prefix('@') {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| Failure::io(format!("--faults {path}: {e}")))?,
        None => value.to_string(),
    };
    let terms: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if terms.is_empty() {
        return Ok(oracle::model::FaultPlan::none());
    }
    terms
        .join("+")
        .parse()
        .map_err(|e: oracle::model::faults::ParseFaultPlanError| {
            Failure::config(format!("--faults: {e}"))
        })
}

/// Default trace capacity when an export was requested but no explicit
/// `--trace`/`--trace-last` bound was given: ample for the paper-scale
/// runs, still bounded.
const DEFAULT_EXPORT_TRACE_CAP: usize = 1_000_000;

/// Resolve the open-traffic flags (`--arrivals`, `--duration`, `--warmup`)
/// and the `open:` workload spelling into the machine's traffic config.
fn parse_open_flags(flags: &Flags, workload: &AnyWorkload) -> Result<Option<OpenTraffic>, Failure> {
    let arrivals = match (workload, flags.value_of("--arrivals")) {
        (AnyWorkload::Open(_), Some(_)) => {
            return Err(Failure::config(
                "--arrivals conflicts with an open: workload — pick one spelling",
            ))
        }
        (AnyWorkload::Open(o), None) => Some(o.arrivals.clone()),
        (AnyWorkload::Closed(_), Some(spec)) => Some(
            spec.parse::<ArrivalSpec>()
                .map_err(|e| Failure::config(format!("--arrivals: {e}")))?,
        ),
        (AnyWorkload::Closed(_), None) => None,
    };
    let Some(arrivals) = arrivals else {
        for flag in [
            "--duration",
            "--warmup",
            "--deadline",
            "--retry",
            "--admission",
            "--breaker",
        ] {
            if flags.value_of(flag).is_some() {
                return Err(Failure::config(format!(
                    "{flag} requires --arrivals SPEC or an open: workload"
                )));
            }
        }
        return Ok(None);
    };
    let duration: u64 = flags.parse("--duration", oracle::runner::DEFAULT_OPEN_DURATION)?;
    let mut open = OpenTraffic::new(arrivals, duration);
    open.warmup = flags.parse("--warmup", open.warmup)?;
    if let Some(v) = flags.value_of("--deadline") {
        open.deadline = Some(
            v.parse()
                .map_err(|e| Failure::config(format!("--deadline {v:?}: {e}")))?,
        );
    }
    if let Some(v) = flags.value_of("--retry") {
        open.retry = Some(
            v.parse::<RetryPolicy>()
                .map_err(|e| Failure::config(format!("--retry {v:?}: {e}")))?,
        );
    }
    if let Some(v) = flags.value_of("--admission") {
        open.admission = Some(
            v.parse::<AdmissionPolicy>()
                .map_err(|e| Failure::config(format!("--admission {v:?}: {e}")))?,
        );
    }
    if let Some(v) = flags.value_of("--breaker") {
        open.breaker = Some(
            v.parse()
                .map_err(|e| Failure::config(format!("--breaker {v:?}: {e}")))?,
        );
    }
    Ok(Some(open))
}

/// Classify a degraded open-traffic outcome after its report was printed:
/// `Overloaded` and `DeadlineExhausted` earn their own exit codes so CI can
/// branch on them, while `Saturated` stays a success (the trip wire is the
/// capacity search's measurement instrument, not a failure).
fn open_outcome_failure(report: &Report) -> Result<(), Failure> {
    match report.open.as_ref().map(|o| &o.outcome) {
        Some(OpenOutcome::Overloaded { shed, arrivals }) => Err(Failure {
            kind: "overloaded",
            code: 4,
            message: format!(
                "admission control shed the majority of arrivals ({shed} of {arrivals})"
            ),
        }),
        Some(OpenOutcome::DeadlineExhausted { abandoned }) => Err(Failure {
            kind: "deadline-exhausted",
            code: 5,
            message: format!(
                "no request ever completed within its deadline ({abandoned} abandoned)"
            ),
        }),
        _ => Ok(()),
    }
}

fn cmd_run(args: &[String]) -> Result<(), Failure> {
    let flags = Flags { args };
    apply_shards(&flags)?;
    let mut trace_cap: usize = flags.parse("--trace", 0)?;
    let trace_last: usize = flags.parse("--trace-last", 0)?;
    let trace_out = flags.value_of("--trace-out");
    let trace_format: TraceFormat = flags.parse("--trace-format", TraceFormat::Jsonl)?;
    let series_out = flags.value_of("--series-out");
    let trace_mode = if trace_last > 0 {
        trace_cap = trace_cap.max(trace_last);
        TraceMode::KeepLast
    } else {
        TraceMode::KeepFirst
    };
    if trace_out.is_some() && trace_cap == 0 {
        trace_cap = DEFAULT_EXPORT_TRACE_CAP;
    }
    let heatmap_path = flags.value_of("--heatmap");

    if let Some(path) = flags.value_of("--resume") {
        if trace_cap > 0 || heatmap_path.is_some() {
            return Err(Failure::config(
                "--resume replays the checkpointed config; --trace/--heatmap do not apply",
            ));
        }
        let (config, report) = oracle::checkpoint::resume_run(Path::new(path))
            .map_err(|e| checkpoint_failure(e).context(path))?;
        println!(
            "resumed {} on {} under {} from {path}",
            config.workload, config.topology, config.strategy
        );
        print_report(&report, &flags);
        return open_outcome_failure(&report);
    }

    let topology: TopologySpec = flags.parse("--topology", TopologySpec::grid(10))?;
    let strategy: StrategySpec = flags.parse("--strategy", StrategySpec::cwn_paper(true))?;
    let any: AnyWorkload = flags.parse("--workload", AnyWorkload::Closed(WorkloadSpec::fib(15)))?;
    let workload = any.workload();
    let open = parse_open_flags(&flags, &any)?;
    let seed: u64 = flags.parse("--seed", 1)?;
    let audit_every: u64 = flags.parse("--audit-every", 0)?;
    let faults = parse_faults_flag(&flags)?;

    let mut machine_cfg = MachineConfig {
        audit_every,
        trace_capacity: trace_cap,
        trace_mode,
        profile: flags.has("--profile"),
        fault_plan: faults,
        open,
        ..MachineConfig::default()
    };
    machine_cfg.seed = seed;
    machine_cfg.coprocessor = !flags.has("--no-coprocessor");
    machine_cfg.per_pe_series =
        flags.has("--series") || heatmap_path.is_some() || series_out.is_some();
    machine_cfg.per_pe_metrics = flags.has("--per-pe");
    machine_cfg.state_mode = match flags.value_of("--state-mode").unwrap_or("auto") {
        "auto" => StateMode::Auto,
        "dense" => StateMode::Dense,
        "sparse" => StateMode::Sparse,
        other => {
            return Err(Failure::config(format!(
                "--state-mode {other}: expected auto, dense, or sparse"
            )))
        }
    };
    if let Some(v) = flags.value_of("--load-period") {
        let period: u64 = v
            .parse()
            .map_err(|e| Failure::config(format!("--load-period {v:?}: {e}")))?;
        machine_cfg.load_info = oracle::model::LoadInfoMode::Piggyback { period };
    }
    let config = SimulationBuilder::new()
        .topology(topology)
        .strategy(strategy)
        .workload(workload)
        .machine(machine_cfg)
        .config();

    let shards = oracle::runner::default_shards();
    if shards > 1 {
        if let Ok(m) = config.machine() {
            if let Some(reason) = oracle::model::ineligibility(&m, shards) {
                eprintln!("note: --shards {shards} falls back to the sequential engine: {reason}");
            }
        }
    }

    let checkpoint_every: u64 = flags.parse("--checkpoint-every", 0)?;
    if checkpoint_every > 0 {
        if trace_cap > 0 || heatmap_path.is_some() {
            return Err(Failure::config(
                "--checkpoint-every does not combine with --trace/--heatmap",
            ));
        }
        let dir = flags.value_of("--checkpoint-dir").unwrap_or("checkpoints");
        let out =
            oracle::checkpoint::run_with_checkpoints(&config, checkpoint_every, Path::new(dir))
                .map_err(checkpoint_failure)?;
        for path in &out.checkpoints {
            println!("checkpoint: {}", path.display());
        }
        print_report(&out.report, &flags);
        return open_outcome_failure(&out.report);
    }

    let (report, trace) = config.run_traced().map_err(sim_failure)?;
    if let Some(path) = trace_out {
        let text = export_trace(&trace, &report, trace_format);
        std::fs::write(path, &text).map_err(|e| Failure::io(format!("writing {path}: {e}")))?;
        println!(
            "wrote {} trace to {path} ({} events, {} dropped)",
            match trace_format {
                TraceFormat::Jsonl => "jsonl",
                TraceFormat::Chrome => "chrome",
            },
            trace.len(),
            trace.dropped()
        );
    }
    if let Some(path) = series_out {
        let csv = export_series_csv(&report);
        std::fs::write(path, &csv).map_err(|e| Failure::io(format!("writing {path}: {e}")))?;
        println!(
            "wrote utilization series to {path} ({} intervals x {} PEs)",
            report.util_series.len(),
            report.num_pes
        );
    }
    if let Some(path) = heatmap_path {
        let series = report
            .per_pe_series
            .as_ref()
            .expect("per-PE series was requested");
        let img = oracle::heatmap::render(series, 4);
        img.write_to(path)
            .map_err(|e| Failure::io(format!("writing {path}: {e}")))?;
        println!(
            "wrote load-monitor heatmap to {path} ({}x{} px)",
            img.width(),
            img.height()
        );
    }

    print_report(&report, &flags);
    if trace.dropped() > 0 {
        let what = match trace.mode() {
            TraceMode::KeepFirst => "dropped past capacity",
            TraceMode::KeepLast => "overwritten (ring mode)",
        };
        println!(
            "warning: trace truncated — {} of {} events {what}",
            trace.dropped(),
            trace.dropped() + trace.len() as u64
        );
    }
    // Print the trace inline only when it was explicitly requested for the
    // terminal (exported traces can be huge).
    if trace_cap > 0 && trace_out.is_none() {
        let which = match trace.mode() {
            TraceMode::KeepFirst => "first",
            TraceMode::KeepLast => "last",
        };
        println!("\nevent trace ({which} {} events):", trace.len());
        print!("{}", trace.render());
    }
    open_outcome_failure(&report)
}

/// `trace-check FILE [--format jsonl|chrome]` — structural validation of an
/// exported trace (CI runs this against freshly exported files).
fn cmd_trace_check(args: &[String]) -> Result<(), Failure> {
    let Some(path) = args.first().filter(|a| !a.starts_with('-')) else {
        return Err(Failure::config("trace-check needs a trace file"));
    };
    let flags = Flags { args: &args[1..] };
    let text = std::fs::read_to_string(path).map_err(|e| Failure::io(format!("{path}: {e}")))?;
    let format = match flags.value_of("--format") {
        Some(f) => f.parse::<TraceFormat>().map_err(Failure::config)?,
        None => oracle::traceio::sniff_format(&text),
    };
    let summary = validate_trace(&text, format).map_err(|e| Failure {
        kind: "trace",
        code: 3,
        message: format!("{path}: {e}"),
    })?;
    println!(
        "{path}: valid {} trace — {} events, {} tracks, {} dropped",
        match format {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Chrome => "chrome",
        },
        summary.events,
        summary.tracks,
        summary.dropped
    );
    Ok(())
}

fn print_report(report: &Report, flags: &Flags) {
    if flags.has("--csv") {
        println!("metric,value");
        println!("strategy,{}", report.strategy);
        println!("topology,{}", report.topology);
        println!("program,{}", report.program);
        println!("num_pes,{}", report.num_pes);
        println!("completion_time,{}", report.completion_time);
        println!("result,{}", report.result);
        println!("goals,{}", report.goals_executed);
        // Fraction in [0, 1], like every utilization the tool emits.
        println!("avg_utilization,{:.5}", report.avg_utilization);
        println!("speedup,{:.3}", report.speedup);
        println!("avg_goal_distance,{:.3}", report.avg_goal_distance);
        println!("hop_overflow,{}", report.hop_overflow);
        println!("goal_hops,{}", report.traffic.goal_hops);
        println!("response_hops,{}", report.traffic.response_hops);
        println!("control_msgs,{}", report.traffic.control_msgs);
        println!("load_updates,{}", report.traffic.load_updates);
        println!("events,{}", report.events);
        if report.faults.any() {
            println!("pes_crashed,{}", report.faults.pes_crashed);
            println!("goals_lost,{}", report.faults.goals_lost);
            println!("goals_respawned,{}", report.faults.goals_respawned);
            println!("messages_dropped,{}", report.faults.messages_dropped);
            println!("duplicate_responses,{}", report.faults.duplicate_responses);
            println!("retries_exhausted,{}", report.faults.retries_exhausted);
        }
        if let Some(o) = &report.open {
            match o.outcome {
                OpenOutcome::Completed => println!("open_outcome,completed"),
                OpenOutcome::Saturated { at, inflight } => {
                    println!("open_outcome,saturated");
                    println!("saturated_at,{at}");
                    println!("saturated_inflight,{inflight}");
                }
                OpenOutcome::Overloaded { shed, arrivals } => {
                    println!("open_outcome,overloaded");
                    println!("overloaded_shed,{shed}");
                    println!("overloaded_arrivals,{arrivals}");
                }
                OpenOutcome::DeadlineExhausted { abandoned } => {
                    println!("open_outcome,deadline-exhausted");
                    println!("deadline_abandoned,{abandoned}");
                }
            }
            println!("open_duration,{}", o.duration);
            println!("open_warmup,{}", o.warmup);
            println!("arrivals_total,{}", o.arrivals);
            println!("completions_total,{}", o.completions);
            println!("completions_measured,{}", o.completions_measured);
            println!("inflight_at_end,{}", o.inflight_at_end);
            println!("offered_rate,{:.4}", o.offered_rate);
            println!("throughput,{:.4}", o.throughput);
            println!("goodput,{:.4}", o.goodput);
            if let Some(d) = o.deadline {
                println!("deadline,{d}");
            }
            println!("shed,{}", o.shed);
            println!("shed_rate,{:.4}", o.shed_rate);
            println!("abandoned_deadline,{}", o.abandoned_deadline);
            println!("abandoned_retries,{}", o.abandoned_retries);
            println!("abandonment_rate,{:.4}", o.abandonment_rate);
            println!("retries,{}", o.retries);
            println!("breaker_opens,{}", o.breaker_opens);
            println!("sojourn_mean,{:.2}", o.sojourn_mean);
            println!("sojourn_p50,{}", o.sojourn_p50);
            println!("sojourn_p95,{}", o.sojourn_p95);
            println!("sojourn_p99,{}", o.sojourn_p99);
            println!("sojourn_max,{}", o.sojourn_max);
            println!("qlen_time_avg,{:.2}", o.qlen_time_avg);
            println!("qlen_p95,{}", o.qlen_p95);
        }
    } else {
        println!(
            "{} on {} under {}",
            report.program, report.topology, report.strategy
        );
        println!("  result            {}", report.result);
        println!("  goals             {}", report.goals_executed);
        println!("  completion time   {} units", report.completion_time);
        println!(
            "  avg utilization   {:.1} %",
            report.avg_utilization * 100.0
        );
        println!(
            "  speedup           {:.2} on {} PEs",
            report.speedup, report.num_pes
        );
        println!("  avg goal distance {:.2} hops", report.avg_goal_distance);
        println!(
            "  traffic           goal {} / response {} / control {} / load {}",
            report.traffic.goal_hops,
            report.traffic.response_hops,
            report.traffic.control_msgs,
            report.traffic.load_updates
        );
        println!("  events processed  {}", report.events);
        if report.faults.any() {
            println!(
                "  faults            {} PE crash(es), {} goals lost, {} re-spawned, \
                 {} messages dropped",
                report.faults.pes_crashed,
                report.faults.goals_lost,
                report.faults.goals_respawned,
                report.faults.messages_dropped
            );
        }
        if let Some(o) = &report.open {
            let outcome = match o.outcome {
                OpenOutcome::Completed => "completed".to_string(),
                OpenOutcome::Saturated { at, inflight } => {
                    format!("SATURATED at t={at} ({inflight} requests in flight)")
                }
                OpenOutcome::Overloaded { shed, arrivals } => {
                    format!("OVERLOADED ({shed} of {arrivals} arrivals shed at the door)")
                }
                OpenOutcome::DeadlineExhausted { abandoned } => {
                    format!("DEADLINE EXHAUSTED ({abandoned} requests blew their budget)")
                }
            };
            println!(
                "  open traffic      {outcome} (duration {}, warmup {})",
                o.duration, o.warmup
            );
            println!(
                "  requests          {} arrived / {} completed ({} measured, {} in flight at end)",
                o.arrivals, o.completions, o.completions_measured, o.inflight_at_end
            );
            println!(
                "  rates             offered {:.2} / carried {:.2} / useful {:.2} req per \
                 1000 units",
                o.offered_rate, o.throughput, o.goodput
            );
            if o.deadline.is_some() || o.shed > 0 || o.retries > 0 {
                println!(
                    "  overload          {} shed ({:.1} %) / {} past deadline / {} out of \
                     retries ({:.1} % abandoned) / {} retries / {} breaker opens",
                    o.shed,
                    o.shed_rate * 100.0,
                    o.abandoned_deadline,
                    o.abandoned_retries,
                    o.abandonment_rate * 100.0,
                    o.retries,
                    o.breaker_opens
                );
            }
            println!(
                "  sojourn           mean {:.1} / p50 {} / p95 {} / p99 {} / max {} units",
                o.sojourn_mean, o.sojourn_p50, o.sojourn_p95, o.sojourn_p99, o.sojourn_max
            );
            println!(
                "  queue length      time-avg {:.2} / p95 {}",
                o.qlen_time_avg, o.qlen_p95
            );
        }
    }
    if flags.has("--series") {
        println!("\nutilization over time (interval start, %):");
        for (t, u) in &report.util_series {
            println!("  {t},{:.1}", u * 100.0);
        }
    }
    if let Some(profile) = &report.profile {
        println!("\nengine profile:");
        print!("{}", profile.render());
    }
}

/// Chaos-fuzzing sweep frontend over [`oracle::chaos`].
fn cmd_chaos(args: &[String]) -> Result<(), Failure> {
    let flags = Flags { args };
    // Chaos cases carry fault plans, so sharded execution falls back to
    // the sequential engine case by case — accepting the flag here keeps
    // one command line valid across a whole CI matrix.
    apply_shards(&flags)?;
    let mut config = oracle::chaos::ChaosConfig::default();
    config.cases = flags.parse("--cases", config.cases)?;
    config.seed = flags.parse("--seed", config.seed)?;
    config.audit_every = flags.parse("--audit-every", config.audit_every)?;
    let threads: usize = flags.parse("--threads", 0)?;
    if flags.value_of("--threads").is_some() {
        if threads == 0 {
            return Err(Failure::config("--threads must be at least 1"));
        }
        config.threads = threads;
    }
    let stall_secs: u64 = flags.parse("--stall-secs", config.stall_timeout.as_secs())?;
    config.stall_timeout = std::time::Duration::from_secs(stall_secs);
    let out_dir = flags.value_of("--out");

    println!(
        "chaos sweep: {} cases, master seed {}, {} threads, auditor every {} events",
        config.cases, config.seed, config.threads, config.audit_every
    );
    let report = oracle::chaos::run_chaos(&config);
    for (case, outcome) in &report.outcomes {
        println!("  {} -> {outcome}", case.label());
    }
    println!(
        "chaos summary: {} completed, {} contained, {} failures",
        report.count("completed"),
        report.count("contained"),
        report.failures.len()
    );
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).map_err(|e| Failure::io(format!("{dir}: {e}")))?;
        for failure in &report.failures {
            let path = format!("{dir}/chaos-repro-{:03}.suite", failure.case.index);
            std::fs::write(&path, failure.reproducer())
                .map_err(|e| Failure::io(format!("{path}: {e}")))?;
            println!("wrote reproducer {path}");
        }
    }
    if let Some(worst) = report.failures.first() {
        return Err(Failure {
            kind: "chaos",
            code: 2,
            message: format!(
                "{} of {} cases failed; first: {} -> {}",
                report.failures.len(),
                config.cases,
                worst.shrunk.suite_line(),
                worst.shrunk_outcome
            ),
        });
    }
    Ok(())
}

fn cmd_experiment(args: &[String]) -> Result<(), Failure> {
    use oracle::experiments::{
        ablations, appendix, capacity, degradation, plots, resilience, table1, table2, table3,
        Fidelity,
    };
    use oracle::topo::TopologySpec as T;

    let Some(name) = args.first() else {
        return Err(Failure::config(
            "experiment needs a name (e.g. table2); see --help",
        ));
    };
    let flags = Flags { args: &args[1..] };
    let fidelity = if flags.has("--quick") {
        Fidelity::Quick
    } else {
        Fidelity::Paper
    };
    let seed: u64 = flags.parse("--seed", 1)?;
    apply_threads(&flags)?;
    apply_shards(&flags)?;

    match name.as_str() {
        "table1" => {
            let grid = table1::optimize(fidelity, true, seed);
            let dlm = table1::optimize(fidelity, false, seed);
            println!("{}", table1::render(&grid, &dlm));
        }
        "table2" => {
            let cells = table2::run(fidelity, seed);
            println!("{}", table2::render(&cells));
            let s = table2::summarize(&cells);
            println!(
                "CWN better in {}/{} cells, significantly in {}",
                s.cwn_wins, s.cells, s.significant
            );
        }
        "table3" => {
            let d = table3::run(fidelity, seed);
            println!("{}", table3::render(&d));
        }
        "resilience" => {
            let cells = resilience::run(fidelity, seed);
            if flags.has("--json") {
                println!("{}", resilience::to_json(&cells));
            } else {
                println!("{}", resilience::render(&cells));
                let completed = cells.iter().filter(|c| c.completed).count();
                println!(
                    "{completed}/{} runs completed with the correct result \
                     (--json for per-cell fault counters)",
                    cells.len()
                );
            }
        }
        "capacity" => {
            let cells = capacity::run(fidelity, seed);
            if flags.has("--json") {
                println!("{}", capacity::to_json(&cells));
            } else {
                println!("{}", capacity::render(&cells, fidelity));
                if let Some(best) = cells
                    .iter()
                    .max_by(|a, b| a.max_rate.partial_cmp(&b.max_rate).unwrap())
                {
                    println!(
                        "highest capacity: {}/{} at {:.2} req per 1000 units \
                         (--json for per-probe data)",
                        best.topology, best.strategy, best.max_rate
                    );
                }
            }
        }
        "degradation" => {
            let cells = degradation::run(fidelity, seed);
            let checked = if flags.has("--check") {
                degradation::verify(&cells).map_err(|e| Failure {
                    kind: "degradation",
                    code: 2,
                    message: format!("degradation physics check failed:\n{e}"),
                })?;
                true
            } else {
                false
            };
            if flags.has("--json") {
                println!("{}", degradation::to_json(&cells));
            } else {
                println!("{}", degradation::render(&cells, fidelity));
                // Prefer the best *finite* ratio for the headline: where the
                // unprotected baseline preserved nothing the ratio is inf,
                // which is the common case, not the interesting one.
                let finite = cells
                    .iter()
                    .filter(|c| c.protection_ratio().is_finite() && c.protection_ratio() > 0.0)
                    .max_by(|a, b| a.protection_ratio().total_cmp(&b.protection_ratio()));
                if let Some(best) = finite {
                    println!(
                        "best protection: {}/{} under {} faults preserves {:.1}x the \
                         unprotected goodput (--json for per-cell data)",
                        best.topology,
                        best.strategy,
                        best.fault_name(),
                        best.protection_ratio()
                    );
                } else if cells.iter().any(|c| c.protection_ratio().is_infinite()) {
                    println!(
                        "best protection: the protected stack preserved goodput in every \
                         cell where the unprotected baseline preserved none \
                         (--json for per-cell data)"
                    );
                }
            }
            if checked {
                println!(
                    "checks passed: goodput monotone non-increasing in fault intensity; \
                     every run conserves arrivals"
                );
            }
        }
        "plots-dc-grid" | "plots-dc-dlm" | "plots-fib" => {
            let fib = name == "plots-fib";
            let workloads = plots::plot_workloads(fidelity, fib);
            for &side in fidelity.grid_sides().iter().rev() {
                let topos: Vec<T> = if fib {
                    vec![T::dlm(side), T::grid(side)]
                } else if name == "plots-dc-grid" {
                    vec![T::grid(side)]
                } else {
                    vec![T::dlm(side)]
                };
                for topology in topos {
                    let p = plots::util_vs_goals(topology, &workloads, seed);
                    println!("{}", plots::render_util_vs_goals(&p));
                }
            }
        }
        "plots-time-grid" | "plots-time-dlm" => {
            let (topology, sizes): (T, &[i64]) = match (name.as_str(), fidelity) {
                ("plots-time-grid", Fidelity::Paper) => (T::grid(10), &[18, 15, 9]),
                ("plots-time-grid", Fidelity::Quick) => (T::grid(5), &[13, 9]),
                (_, Fidelity::Paper) => (T::dlm(10), &[18, 15, 9]),
                (_, Fidelity::Quick) => (T::dlm(5), &[13, 9]),
            };
            for &n in sizes {
                let p = plots::util_vs_time(
                    topology,
                    oracle::workloads::WorkloadSpec::fib(n),
                    100,
                    seed,
                );
                println!("{}", plots::render_util_vs_time(&p));
                println!(
                    "{}",
                    oracle::chart::cwn_gm_chart(
                        format!("{} on {}", p.workload, p.topology),
                        "time (units)",
                        &p.cwn,
                        &p.gm
                    )
                );
            }
        }
        "appendix" => {
            for p in appendix::goals_plots(fidelity, seed) {
                println!("{}", plots::render_util_vs_goals(&p));
            }
            for p in appendix::time_plots(fidelity, seed) {
                println!("{}", plots::render_util_vs_time(&p));
            }
        }
        "ablations" => {
            let sections = [
                ("CWN radius sweep", ablations::radius_sweep(fidelity, seed)),
                (
                    "CWN horizon sweep",
                    ablations::horizon_sweep(fidelity, seed),
                ),
                (
                    "GM interval sweep",
                    ablations::gm_interval_sweep(fidelity, seed),
                ),
                ("Load metric", ablations::load_metric(fidelity, seed)),
                ("Load information", ablations::load_info(fidelity, seed)),
                ("Co-processor", ablations::coprocessor(fidelity, seed)),
                (
                    "Comm/computation ratio",
                    ablations::comm_ratio(fidelity, seed),
                ),
                ("Wraparound", ablations::wraparound(fidelity, seed)),
                ("Shootout", ablations::shootout(fidelity, seed)),
                (
                    "Global scalability",
                    ablations::global_scalability(fidelity, seed),
                ),
            ];
            for (title, points) in sections {
                println!("{}", ablations::render(title, &points));
            }
        }
        other => {
            return Err(Failure::config(format!(
                "unknown experiment {other:?}; see --help"
            )))
        }
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), Failure> {
    let Some(path) = args.first().filter(|a| !a.starts_with('-')) else {
        return Err(Failure::config("batch needs a suite file"));
    };
    let flags = Flags { args: &args[1..] };
    apply_threads(&flags)?;
    apply_shards(&flags)?;
    let text = std::fs::read_to_string(path).map_err(|e| Failure::io(format!("{path}: {e}")))?;
    let mut specs = oracle::runner::parse_suite(&text)?;
    let profile = flags.has("--profile");
    if profile {
        for spec in &mut specs {
            spec.config.machine.profile = true;
        }
    }
    let mut table = Table::new(
        format!("suite {path} ({} runs)", specs.len()),
        &["run", "speedup", "util %", "time", "avg dist"],
    );
    let mut rollup = oracle::des::ProfileReport::default();
    for (label, result) in run_batch(&specs) {
        let r = result.map_err(|e| sim_failure(e).context(&label))?;
        table.row(vec![
            label,
            f2(r.speedup),
            f1(r.avg_utilization * 100.0),
            r.completion_time.to_string(),
            f2(r.avg_goal_distance),
        ]);
        if let Some(p) = &r.profile {
            rollup.merge(p);
        }
    }
    if flags.has("--csv") {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
    if profile {
        println!("\nbatch engine profile (all runs merged):");
        print!("{}", rollup.render());
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), Failure> {
    let flags = Flags { args };
    let topology: TopologySpec = flags.parse("--topology", TopologySpec::grid(10))?;
    let workload: WorkloadSpec = flags.parse("--workload", WorkloadSpec::fib(15))?;
    let seed: u64 = flags.parse("--seed", 1)?;
    let (cwn, gm) = paper_strategies(&topology);

    let specs = vec![
        RunSpec::new(
            "CWN",
            SimulationBuilder::new()
                .topology(topology)
                .strategy(cwn)
                .workload(workload)
                .seed(seed)
                .config(),
        ),
        RunSpec::new(
            "GM",
            SimulationBuilder::new()
                .topology(topology)
                .strategy(gm)
                .workload(workload)
                .seed(seed)
                .config(),
        ),
    ];
    let results = run_batch(&specs);
    let mut table = Table::new(
        format!("{workload} on {topology} ({} PEs)", topology.num_pes()),
        &["scheme", "speedup", "util %", "time", "avg dist"],
    );
    let mut speedups = Vec::new();
    for (label, result) in results {
        let r = result.map_err(|e| sim_failure(e).context(&label))?;
        speedups.push(r.speedup);
        table.row(vec![
            label,
            f2(r.speedup),
            f1(r.avg_utilization * 100.0),
            r.completion_time.to_string(),
            f2(r.avg_goal_distance),
        ]);
    }
    println!("{table}");
    println!("speedup of CWN over GM: {:.2}", speedups[0] / speedups[1]);
    Ok(())
}

fn cmd_topo_info(args: &[String]) -> Result<(), Failure> {
    if args.is_empty() {
        return Err(Failure::config(
            "topo-info needs at least one topology spec",
        ));
    }
    // `--dot` prints Graphviz for each spec instead of the table.
    if args.iter().any(|a| a == "--dot") {
        for arg in args.iter().filter(|a| !a.starts_with('-')) {
            let spec: TopologySpec = arg
                .parse()
                .map_err(|e: oracle::topo::spec::ParseSpecError| e.to_string())?;
            print!("{}", spec.build().to_dot());
        }
        return Ok(());
    }
    let mut table = Table::new(
        "Topology characteristics",
        &[
            "topology",
            "PEs",
            "channels",
            "diameter",
            "mean dist",
            "min deg",
            "max deg",
        ],
    );
    for arg in args {
        let spec: TopologySpec = arg
            .parse()
            .map_err(|e: oracle::topo::spec::ParseSpecError| e.to_string())?;
        let t = spec.build();
        let (min_deg, max_deg) = t
            .pes()
            .map(|pe| t.degree(pe))
            .fold((usize::MAX, 0), |(lo, hi), d| (lo.min(d), hi.max(d)));
        table.row(vec![
            spec.to_string(),
            t.num_pes().to_string(),
            t.num_channels().to_string(),
            t.diameter().to_string(),
            f2(t.mean_distance()),
            min_deg.to_string(),
            max_deg.to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn print_list() {
    println!("{USAGE}");
    println!("\npaper presets (Table 1):");
    println!("  grids:          cwn:9x1   gm:1x2x20");
    println!("  lattice-meshes: cwn:5x1   gm:1x1x20");
    println!("\npaper configurations: grid/dlm sides 5, 8, 10, 16, 20; fib 7-18; dc 21-4181");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn value_of_finds_pairs() {
        let a = flags(&["--seed", "42", "--csv"]);
        let f = Flags { args: &a };
        assert_eq!(f.value_of("--seed"), Some("42"));
        assert_eq!(f.value_of("--missing"), None);
        assert!(f.has("--csv"));
        assert!(!f.has("--series"));
    }

    #[test]
    fn parse_uses_defaults_and_values() {
        let a = flags(&["--seed", "7"]);
        let f = Flags { args: &a };
        assert_eq!(f.parse("--seed", 1u64).unwrap(), 7);
        assert_eq!(f.parse("--trace", 0usize).unwrap(), 0);
    }

    #[test]
    fn parse_reports_bad_values() {
        let a = flags(&["--seed", "xyz"]);
        let f = Flags { args: &a };
        let err = f.parse("--seed", 1u64).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
        assert!(err.contains("xyz"), "{err}");
    }

    #[test]
    fn run_command_smoke() {
        let a = flags(&[
            "--topology",
            "ring:4",
            "--strategy",
            "local",
            "--workload",
            "fib:6",
            "--csv",
        ]);
        cmd_run(&a).expect("run should succeed");
    }

    #[test]
    fn compare_command_smoke() {
        let a = flags(&["--topology", "grid:4", "--workload", "fib:8"]);
        cmd_compare(&a).expect("compare should succeed");
    }

    #[test]
    fn topo_info_rejects_empty_and_bad_specs() {
        assert!(cmd_topo_info(&[]).is_err());
        assert!(cmd_topo_info(&flags(&["nonsense:9"])).is_err());
        cmd_topo_info(&flags(&["grid:4"])).expect("valid spec");
    }

    #[test]
    fn batch_command_runs_a_suite() {
        let path = std::env::temp_dir().join("oracle_cli_suite_test.txt");
        std::fs::write(&path, "grid:4 cwn:4x1 fib:9\nring:4 local fib:8 seed=2\n").unwrap();
        cmd_batch(&flags(&[path.to_str().unwrap(), "--csv"])).expect("suite runs");
        let err = cmd_batch(&[]).unwrap_err();
        assert!(err.message.contains("suite file"));
        assert_eq!((err.kind, err.code), ("config", 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_command_open_arrivals_smoke() {
        let a = flags(&[
            "--topology",
            "grid:4",
            "--strategy",
            "cwn:4x1",
            "--workload",
            "fib:8",
            "--arrivals",
            "poisson:4",
            "--duration",
            "2000",
            "--warmup",
            "200",
            "--csv",
        ]);
        cmd_run(&a).expect("open run should succeed");
        // The combined `open:` workload spelling is equivalent.
        let a = flags(&[
            "--topology",
            "grid:4",
            "--strategy",
            "cwn:4x1",
            "--workload",
            "open:poisson:4/fib:8",
            "--duration",
            "2000",
        ]);
        cmd_run(&a).expect("open: workload run should succeed");
    }

    #[test]
    fn open_flags_are_validated_as_config_errors() {
        // Bad arrival spec: config error (exit 3), message names the token
        // and quotes the grammar.
        let err = cmd_run(&flags(&["--arrivals", "poisson:-3"])).unwrap_err();
        assert_eq!((err.kind, err.code), ("config", 3));
        assert!(err.message.contains("\"-3\""), "{}", err.message);
        assert!(err.message.contains("PROCESS[@EDGES]"), "{}", err.message);
        // Bad open: workload spelling too.
        let err = cmd_run(&flags(&["--workload", "open:nope:1/fib:8"])).unwrap_err();
        assert_eq!((err.kind, err.code), ("config", 3));
        assert!(
            err.message.contains("open:ARRIVAL/WORKLOAD"),
            "{}",
            err.message
        );
        // Both spellings at once conflict.
        let err = cmd_run(&flags(&[
            "--workload",
            "open:poisson:4/fib:8",
            "--arrivals",
            "poisson:4",
        ]))
        .unwrap_err();
        assert_eq!((err.kind, err.code), ("config", 3));
        // Windows without any arrival process are meaningless.
        let err = cmd_run(&flags(&["--duration", "500"])).unwrap_err();
        assert!(err.message.contains("--arrivals"), "{}", err.message);
    }

    #[test]
    fn experiment_capacity_quick_smoke() {
        cmd_experiment(&flags(&["capacity", "--quick"])).expect("capacity quick");
        cmd_experiment(&flags(&["capacity", "--quick", "--json"])).expect("capacity json");
    }

    #[test]
    fn experiment_degradation_quick_smoke() {
        cmd_experiment(&flags(&["degradation", "--quick", "--check"])).expect("degradation quick");
        cmd_experiment(&flags(&["degradation", "--quick", "--json"])).expect("degradation json");
    }

    #[test]
    fn run_command_overload_flags_smoke() {
        let a = flags(&[
            "--topology",
            "grid:4",
            "--strategy",
            "cwn:4x1",
            "--workload",
            "fib:8",
            "--arrivals",
            "poisson:4",
            "--duration",
            "2000",
            "--warmup",
            "200",
            "--deadline",
            "1500",
            "--retry",
            "2x100",
            "--admission",
            "queue:32",
            "--breaker",
            "300",
            "--faults",
            "crash:5@600",
            "--csv",
        ]);
        cmd_run(&a).expect("a lightly loaded protected run completes");
    }

    #[test]
    fn overload_flags_require_arrivals_and_valid_grammars() {
        for flag in ["--deadline", "--retry", "--admission", "--breaker"] {
            let err = cmd_run(&flags(&[flag, "1x1"])).unwrap_err();
            assert_eq!((err.kind, err.code), ("config", 3));
            assert!(err.message.contains("--arrivals"), "{}", err.message);
        }
        for (flag, bad) in [
            ("--deadline", "soon"),
            ("--retry", "zz"),
            ("--admission", "magic:9"),
            ("--breaker", "-4"),
        ] {
            let err = cmd_run(&flags(&["--arrivals", "poisson:4", flag, bad])).unwrap_err();
            assert_eq!((err.kind, err.code), ("config", 3));
            assert!(err.message.contains(flag), "{}", err.message);
        }
    }

    #[test]
    fn degraded_open_outcomes_map_to_their_exit_codes() {
        // A tight token bucket in front of a hopeless offered load sheds
        // the majority of arrivals: exit 4, class "overloaded".
        let err = cmd_run(&flags(&[
            "--topology",
            "ring:4",
            "--strategy",
            "local",
            "--workload",
            "fib:8",
            "--arrivals",
            "poisson:400",
            "--duration",
            "3000",
            "--warmup",
            "100",
            "--admission",
            "bucket:1x2",
            "--csv",
        ]))
        .unwrap_err();
        assert_eq!((err.kind, err.code), ("overloaded", 4), "{}", err.message);

        // A deadline below the fastest possible sojourn is unservable:
        // exit 5, class "deadline-exhausted".
        let err = cmd_run(&flags(&[
            "--topology",
            "grid:4",
            "--strategy",
            "cwn:4x1",
            "--workload",
            "fib:8",
            "--arrivals",
            "poisson:2",
            "--duration",
            "3000",
            "--deadline",
            "1",
        ]))
        .unwrap_err();
        assert_eq!(
            (err.kind, err.code),
            ("deadline-exhausted", 5),
            "{}",
            err.message
        );
    }

    #[test]
    fn experiment_rejects_unknown_names() {
        let err = cmd_experiment(&flags(&["not-a-table"])).unwrap_err();
        assert!(err.message.contains("unknown experiment"));
        assert!(cmd_experiment(&[]).is_err());
    }

    #[test]
    fn experiment_table3_quick_smoke() {
        cmd_experiment(&flags(&["table3", "--quick"])).expect("table3 quick");
    }

    #[test]
    fn run_command_with_faults_smoke() {
        let a = flags(&[
            "--topology",
            "ring:4",
            "--strategy",
            "local",
            "--workload",
            "fib:8",
            "--faults",
            "crash:3@100",
            "--csv",
        ]);
        cmd_run(&a).expect("an idle-PE crash must not break the run");
        let bad = flags(&["--faults", "crash:zz"]);
        assert!(cmd_run(&bad).is_err());
    }

    #[test]
    fn threads_flag_is_validated_and_accepted() {
        let path = std::env::temp_dir().join("oracle_cli_threads_suite_test.txt");
        std::fs::write(&path, "grid:4 cwn:4x1 fib:9\nring:4 local fib:8\n").unwrap();
        cmd_batch(&flags(&[path.to_str().unwrap(), "--threads", "2"])).expect("capped batch runs");
        let err = cmd_batch(&flags(&[path.to_str().unwrap(), "--threads", "0"])).unwrap_err();
        assert!(err.message.contains("--threads"), "{}", err.message);
        std::fs::remove_file(&path).ok();
        oracle::runner::clear_default_threads();
    }

    #[test]
    fn shards_flag_is_validated_and_cleared() {
        let apply = |args: &[&str]| {
            let a = flags(args);
            apply_shards(&Flags { args: &a })
        };
        apply(&["--shards", "3"]).expect("positive shard count accepted");
        assert_eq!(oracle::runner::default_shards(), 3);
        let err = apply(&["--shards", "0"]).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        apply(&["--shards", "auto"]).expect("auto accepted");
        assert!(oracle::runner::default_shards() >= 1);
        apply(&[]).expect("absent flag clears the default");
        assert_eq!(oracle::runner::default_shards(), 1);
    }

    #[test]
    fn batch_command_accepts_fault_plans() {
        let path = std::env::temp_dir().join("oracle_cli_fault_suite_test.txt");
        std::fs::write(&path, "ring:4 local fib:8 faults=crash:3@100\n").unwrap();
        cmd_batch(&flags(&[path.to_str().unwrap(), "--csv"])).expect("fault suite runs");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn faults_flag_loads_plan_files() {
        let path =
            std::env::temp_dir().join(format!("oracle_cli_faults_file_{}.txt", std::process::id()));
        std::fs::write(
            &path,
            "# one term per line, joined with `+`\ncrash:3@100\n\nloss:1%\n",
        )
        .unwrap();
        let arg = format!("@{}", path.display());
        let a = flags(&["--faults", &arg]);
        let plan = parse_faults_flag(&Flags { args: &a }).expect("plan file parses");
        assert_eq!(plan.pe_crashes.len(), 1);
        assert!((plan.message_loss - 0.01).abs() < 1e-9);

        let missing = flags(&["--faults", "@/no/such/file"]);
        let err = parse_faults_flag(&Flags { args: &missing }).unwrap_err();
        assert_eq!((err.kind, err.code), ("io", 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failures_are_classified_by_outcome() {
        // Bad spec: configuration error, exit 3.
        let err = cmd_run(&flags(&["--topology", "nonsense:9"])).unwrap_err();
        assert_eq!((err.kind, err.code), ("config", 3));
        // Invalid fault plan (PE out of range on ring:4): still exit 3.
        let err = cmd_run(&flags(&[
            "--topology",
            "ring:4",
            "--strategy",
            "local",
            "--workload",
            "fib:8",
            "--faults",
            "crash:99@100",
        ]))
        .unwrap_err();
        assert_eq!((err.kind, err.code), ("config", 3));
        // Crashing the only busy PE with no recovery layer loses goals:
        // simulation-outcome failure, exit 2.
        let err = cmd_run(&flags(&[
            "--topology",
            "ring:4",
            "--strategy",
            "local",
            "--workload",
            "fib:8",
            "--faults",
            "crash:0@1",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2, "error[{}]: {}", err.kind, err.message);
    }

    #[test]
    fn run_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join(format!("oracle_cli_ckpt_{}", std::process::id()));
        let a = flags(&[
            "--topology",
            "grid:4",
            "--strategy",
            "cwn:4x1",
            "--workload",
            "fib:10",
            "--seed",
            "5",
            "--audit-every",
            "64",
            "--checkpoint-every",
            "300",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
        ]);
        cmd_run(&a).expect("checkpointed run succeeds");
        let mut snaps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        snaps.sort();
        assert!(!snaps.is_empty(), "no checkpoints written");
        let resume = flags(&["--resume", snaps[0].to_str().unwrap()]);
        cmd_run(&resume).expect("resume succeeds");

        let err = cmd_run(&flags(&["--resume", "/no/such/checkpoint"])).unwrap_err();
        assert_eq!(err.code, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_exports_and_trace_check_validates() {
        let dir = std::env::temp_dir();
        let jsonl = dir.join(format!("oracle_cli_trace_{}.jsonl", std::process::id()));
        let chrome = dir.join(format!("oracle_cli_trace_{}.json", std::process::id()));
        let series = dir.join(format!("oracle_cli_series_{}.csv", std::process::id()));
        let base = [
            "--topology",
            "grid:4",
            "--strategy",
            "cwn:4x1",
            "--workload",
            "fib:10",
            "--seed",
            "3",
        ];

        let mut a: Vec<String> = flags(&base);
        a.extend(flags(&["--trace-out", jsonl.to_str().unwrap()]));
        a.extend(flags(&["--series-out", series.to_str().unwrap()]));
        cmd_run(&a).expect("jsonl export run");
        cmd_trace_check(&flags(&[jsonl.to_str().unwrap()])).expect("jsonl validates");

        let mut a: Vec<String> = flags(&base);
        a.extend(flags(&[
            "--trace-out",
            chrome.to_str().unwrap(),
            "--trace-format",
            "chrome",
            "--profile",
        ]));
        cmd_run(&a).expect("chrome export run");
        cmd_trace_check(&flags(&[chrome.to_str().unwrap()])).expect("chrome validates");

        let csv = std::fs::read_to_string(&series).unwrap();
        assert!(csv
            .lines()
            .nth(2)
            .unwrap()
            .starts_with("interval_start,avg,pe0"));

        // Tampered files must be rejected, as must unknown formats.
        std::fs::write(&jsonl, "not json\n").unwrap();
        let err = cmd_trace_check(&flags(&[jsonl.to_str().unwrap()])).unwrap_err();
        assert_eq!((err.kind, err.code), ("trace", 3));
        assert!(cmd_trace_check(&flags(&["/no/such/trace"])).is_err());

        std::fs::remove_file(&jsonl).ok();
        std::fs::remove_file(&chrome).ok();
        std::fs::remove_file(&series).ok();
    }

    #[test]
    fn truncated_export_headers_carry_the_dropped_count() {
        let path = std::env::temp_dir().join(format!(
            "oracle_cli_trace_trunc_{}.jsonl",
            std::process::id()
        ));
        let mut a = flags(&[
            "--topology",
            "grid:4",
            "--strategy",
            "cwn:4x1",
            "--workload",
            "fib:10",
            "--trace",
            "10",
        ]);
        a.extend(flags(&["--trace-out", path.to_str().unwrap()]));
        cmd_run(&a).expect("truncated export run");
        let text = std::fs::read_to_string(&path).unwrap();
        let header = text.lines().next().unwrap();
        assert!(
            header.contains("\"events_dropped\":") && !header.contains("\"events_dropped\":0"),
            "header must confess the truncation: {header}"
        );
        // keep-last mode records the same count as overwritten events.
        let mut a = flags(&[
            "--topology",
            "grid:4",
            "--strategy",
            "cwn:4x1",
            "--workload",
            "fib:10",
            "--trace-last",
            "10",
        ]);
        a.extend(flags(&["--trace-out", path.to_str().unwrap()]));
        cmd_run(&a).expect("ring-mode export run");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text
            .lines()
            .next()
            .unwrap()
            .contains("\"trace_mode\":\"keep-last\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chaos_command_smoke() {
        let dir = std::env::temp_dir().join(format!("oracle_cli_chaos_{}", std::process::id()));
        cmd_chaos(&flags(&[
            "--cases",
            "4",
            "--seed",
            "9",
            "--threads",
            "2",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .expect("a small chaos sweep passes");
        let err = cmd_chaos(&flags(&["--threads", "0"])).unwrap_err();
        assert_eq!((err.kind, err.code), ("config", 3));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
