//! k-ary n-cubes: the family that unifies rings, toruses, and hypercubes.
//!
//! A k-ary n-cube has `k^n` PEs addressed by `n` base-`k` digits; PEs are
//! linked iff their addresses differ by ±1 (mod k) in exactly one digit.
//! `kary_ncube(k, 1)` is a ring of k, `kary_ncube(k, 2)` the k×k torus,
//! and `kary_ncube(2, n)` the binary hypercube — so this one constructor
//! covers the whole design space the 1980s interconnection literature
//! argued over, and lets the ablation harness sweep dimensionality at a
//! fixed PE count.
//!
//! Routing is arithmetic (per-digit ring distance), so even million-PE
//! cubes carry no distance table.

use crate::graph::{ArithmeticRouter, PeId, Topology};

/// Build a k-ary n-cube (`k^n` PEs).
///
/// # Panics
///
/// Panics unless `k >= 2`, `1 <= n`, and `k^n` fits the PE id space
/// (`u32`).
pub fn kary_ncube(k: usize, n: u32) -> Topology {
    assert!(k >= 2, "radix must be at least 2");
    assert!(n >= 1, "dimension must be at least 1");
    let size = (k as u64)
        .checked_pow(n)
        .filter(|&s| u32::try_from(s).is_ok())
        .unwrap_or_else(|| panic!("k^n = {k}^{n} exceeds the PE id space"));
    let size = size as usize;

    // Stride of each dimension in the mixed-radix address.
    let strides: Vec<usize> = (0..n).map(|d| k.pow(d)).collect();

    let mut channels = Vec::new();
    for id in 0..size {
        for (d, &stride) in strides.iter().enumerate() {
            let digit = (id / stride) % k;
            // +1 neighbour along dimension d (wrapping). Emitting only the
            // +1 link per node covers every edge exactly once, except for
            // k == 2 where +1 and -1 coincide: emit only from digit 0.
            if k == 2 && digit != 0 {
                continue;
            }
            let up = (digit + 1) % k;
            let nbr = id - digit * stride + up * stride;
            if nbr != id {
                // For k == 2 the pair is emitted once; for k > 2 the wrap
                // link from digit k-1 to 0 is distinct and needed.
                channels.push(vec![PeId(id as u32), PeId(nbr as u32)]);
            }
            let _ = d;
        }
    }
    // Each digit contributes at most floor(k/2) ring hops.
    let diameter = n * (k as u32 / 2);
    Topology::with_arithmetic_router(
        format!("{k}-ary {n}-cube"),
        size,
        channels,
        ArithmeticRouter::KAry { k: k as u32, n },
        diameter,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::hypercube;
    use crate::mesh::mesh2d;
    use crate::misc::ring;

    #[test]
    fn one_dimension_is_a_ring() {
        let cube = kary_ncube(7, 1);
        let r = ring(7);
        assert_eq!(cube.num_pes(), r.num_pes());
        assert_eq!(cube.num_channels(), r.num_channels());
        assert_eq!(cube.diameter(), r.diameter());
        cube.check_invariants();
    }

    #[test]
    fn two_dimensions_is_a_torus() {
        let cube = kary_ncube(5, 2);
        let torus = mesh2d(5, 5, true);
        assert_eq!(cube.num_pes(), torus.num_pes());
        assert_eq!(cube.num_channels(), torus.num_channels());
        assert_eq!(cube.diameter(), torus.diameter());
        cube.check_invariants();
    }

    #[test]
    fn radix_two_is_a_hypercube() {
        let cube = kary_ncube(2, 6);
        let h = hypercube(6);
        assert_eq!(cube.num_pes(), h.num_pes());
        assert_eq!(cube.num_channels(), h.num_channels());
        assert_eq!(cube.diameter(), h.diameter());
        for pe in cube.pes() {
            assert_eq!(cube.degree(pe), h.degree(pe));
        }
        cube.check_invariants();
    }

    #[test]
    fn diameter_is_n_times_half_k() {
        // Each dimension contributes floor(k/2) wrap-distance.
        assert_eq!(kary_ncube(6, 3).diameter(), 9);
        assert_eq!(kary_ncube(4, 2).diameter(), 4);
    }

    #[test]
    fn degrees() {
        // k > 2: 2 links per dimension; k == 2: one.
        let t = kary_ncube(4, 3);
        for pe in t.pes() {
            assert_eq!(t.degree(pe), 6);
        }
        let b = kary_ncube(2, 5);
        for pe in b.pes() {
            assert_eq!(b.degree(pe), 5);
        }
    }

    #[test]
    fn three_dimensional_invariants() {
        kary_ncube(3, 3).check_invariants();
    }

    #[test]
    #[should_panic(expected = "radix")]
    fn unary_radix_panics() {
        kary_ncube(1, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_cube_panics() {
        kary_ncube(64, 8);
    }

    /// Arithmetic routing must reproduce the dense BFS table exactly.
    #[test]
    fn arithmetic_router_matches_dense_bfs_tables() {
        for (k, n) in [(5, 1), (4, 2), (3, 3), (2, 4)] {
            let arith = kary_ncube(k, n);
            let channels = (0..arith.num_channels())
                .map(|c| {
                    arith
                        .channel_members(crate::graph::ChannelId(c as u32))
                        .to_vec()
                })
                .collect();
            let dense =
                Topology::from_channels(arith.name().to_string(), arith.num_pes(), channels);
            for a in arith.pes() {
                for b in arith.pes() {
                    assert_eq!(arith.distance(a, b), dense.distance(a, b));
                    assert_eq!(
                        arith.next_hop(a, b),
                        dense.next_hop(a, b),
                        "{a}->{b} on {}-ary {}-cube",
                        k,
                        n
                    );
                }
            }
            assert_eq!(arith.diameter(), dense.diameter());
            assert!((arith.mean_distance() - dense.mean_distance()).abs() < 1e-9);
        }
    }
}
