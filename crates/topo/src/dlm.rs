//! The double-lattice-mesh (DLM), reconstructed from the paper.
//!
//! The DLM is a bus-based topology proposed in Kale, "Optimal Communication
//! Neighborhoods" (ICPP 1986), which is not available to us. We reconstruct
//! it from what the 1988 paper shows: Figure 1 ("A 10×10 Double Lattice Mesh
//! with bus-span = 5"), the plot headers (`Double Lattice-Mesh of 5 20 20`
//! = span 5, 20×20 PEs), and the property that DLM diameters are small (4–5)
//! where same-size grids range 8–38.
//!
//! The reconstruction: the PEs form a `w × h` array. Buses run along rows
//! and along columns; a bus *spans* `span` grid edges, i.e. it connects
//! `span + 1` consecutive PEs, and successive buses along a line share their
//! endpoint PEs (with wraparound), so a message can switch buses at a shared
//! endpoint. There are **two** overlapping lattices of such buses — the
//! second offset by `span / 2` — so every PE sits on two row buses and two
//! column buses and the segments interlock like brickwork. This yields the
//! small diameters the paper requires (diameter 2 for a 10×10 with span 5,
//! 4 for 16×16 and 20×20 — the paper quotes 4–5 for its DLMs). Measured
//! diameters for the paper's configurations are recorded in EXPERIMENTS.md.

use std::collections::BTreeSet;

use crate::graph::{PeId, Topology};

/// Build a `width × height` double-lattice-mesh whose buses span `span`
/// grid edges (`span + 1` PEs each).
///
/// # Panics
///
/// Panics if `span < 2`, `span` exceeds the dimension it runs along, or a
/// dimension is zero.
pub fn double_lattice_mesh(span: usize, width: usize, height: usize) -> Topology {
    assert!(span >= 2, "bus span must be at least 2");
    assert!(width > 0 && height > 0, "DLM dimensions must be positive");
    assert!(
        span <= width && span <= height,
        "bus span exceeds a mesh dimension"
    );
    let id = |x: usize, y: usize| PeId((y * width + x) as u32);

    // Collect member sets into a BTreeSet: dedupes the second lattice when it
    // coincides with the first (e.g. span == width), and keeps channel
    // numbering deterministic.
    let mut sets: BTreeSet<Vec<PeId>> = BTreeSet::new();

    // Starting offsets of the two lattices along one dimension.
    let starts = |dim: usize| {
        let mut v = Vec::new();
        for lattice in 0..2usize {
            let phase = lattice * (span / 2);
            let mut x0 = phase;
            while x0 < dim {
                v.push(x0);
                x0 += span;
            }
        }
        v
    };

    // Row buses: span+1 PEs, successive buses sharing endpoints.
    for y in 0..height {
        for x0 in starts(width) {
            let mut members: Vec<PeId> = (0..=span).map(|k| id((x0 + k) % width, y)).collect();
            members.sort_unstable();
            members.dedup();
            if members.len() >= 2 {
                sets.insert(members);
            }
        }
    }
    // Column buses.
    for x in 0..width {
        for y0 in starts(height) {
            let mut members: Vec<PeId> = (0..=span).map(|k| id(x, (y0 + k) % height)).collect();
            members.sort_unstable();
            members.dedup();
            if members.len() >= 2 {
                sets.insert(members);
            }
        }
    }

    Topology::from_channels(
        format!("dlm span-{span} {width}x{height}"),
        width * height,
        sets.into_iter().collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_have_small_diameters() {
        // The paper: "The DLM topologies have smaller diameters (4-5)
        // compared to the grids (ranges from 8 to 38)."
        let cases = [
            (5, 5, 5),   // 25 PEs
            (4, 8, 8),   // 64 PEs
            (5, 10, 10), // 100 PEs
            (4, 16, 16), // 256 PEs
            (5, 20, 20), // 400 PEs
        ];
        for (span, w, h) in cases {
            let t = double_lattice_mesh(span, w, h);
            assert_eq!(t.num_pes(), w * h);
            assert!(
                (1..=6).contains(&t.diameter()),
                "{}: diameter {} not small",
                t.name(),
                t.diameter()
            );
        }
    }

    #[test]
    fn dlm_10x10_span5_structure() {
        let t = double_lattice_mesh(5, 10, 10);
        t.check_invariants();
        // Every PE lies on 2 row buses and 2 column buses; each bus brings 4
        // other members, but overlapping lattices share some members.
        for pe in t.pes() {
            let d = t.degree(pe);
            assert!(d >= 8, "degree {d} too small at {pe}");
        }
        // The paper quotes DLM diameters of 4-5 (the 10x10 grid's is 18).
        assert!(t.diameter() <= 4, "diameter = {}", t.diameter());
    }

    #[test]
    fn span_equal_to_width_collapses_to_one_lattice() {
        let t = double_lattice_mesh(5, 5, 5);
        // Whole-row buses: the offset lattice wraps onto the same member
        // sets, so there are exactly 5 row buses + 5 column buses.
        assert_eq!(t.num_channels(), 10);
        assert_eq!(t.diameter(), 2);
        t.check_invariants();
    }

    #[test]
    fn buses_have_span_plus_one_members() {
        let t = double_lattice_mesh(4, 8, 8);
        for c in 0..t.num_channels() {
            let members = t.channel_members(crate::graph::ChannelId(c as u32));
            assert_eq!(members.len(), 5, "bus with wrong span");
        }
        t.check_invariants();
    }

    #[test]
    fn non_dividing_span_still_connects() {
        let t = double_lattice_mesh(4, 10, 10);
        t.check_invariants();
        assert!(t.diameter() <= 6);
    }

    #[test]
    #[should_panic(expected = "span must be at least 2")]
    fn tiny_span_panics() {
        double_lattice_mesh(1, 5, 5);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_span_panics() {
        double_lattice_mesh(6, 5, 5);
    }
}
