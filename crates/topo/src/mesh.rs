//! The 2-D nearest-neighbour grid.
//!
//! The paper's text says "the 2-dimensional grid (nearest neighbor grid) with
//! wrap-around connections", but the diameters it quotes (8 for 5×5 up to 38
//! for 20×20) are those of the *plain* mesh — a 20×20 torus has diameter 20.
//! Both variants are provided; the experiment presets follow the quoted
//! diameters and use `wraparound = false` (see DESIGN.md).
//!
//! Meshes route arithmetically (per-dimension coordinate walk), so a
//! 1000×1000 torus costs O(PEs + links) memory — no all-pairs table.

use crate::graph::{ArithmeticRouter, PeId, Topology};

/// Diameter contribution of one dimension: `size - 1` on a path, `size / 2`
/// on a ring (wrap links exist only on dimensions longer than 2).
fn dim_diameter(size: usize, wrap: bool) -> u32 {
    if wrap && size > 2 {
        (size / 2) as u32
    } else {
        (size - 1) as u32
    }
}

/// Build a `width × height` 2-D mesh. With `wraparound`, opposite edges are
/// joined into a torus.
///
/// PEs are numbered row-major: PE at `(x, y)` is `y * width + x`.
///
/// # Panics
///
/// Panics if either dimension is zero, if the mesh would have a single PE
/// (no channels), or if `width * height` overflows the PE id space.
pub fn mesh2d(width: usize, height: usize, wraparound: bool) -> Topology {
    assert!(width > 0 && height > 0, "mesh dimensions must be positive");
    let n = width
        .checked_mul(height)
        .filter(|&n| u32::try_from(n).is_ok())
        .unwrap_or_else(|| panic!("mesh {width}x{height} overflows the PE id space"));
    assert!(n > 1, "a 1x1 mesh has no channels");
    let id = |x: usize, y: usize| PeId((y * width + x) as u32);
    let mut channels = Vec::with_capacity(2 * n);
    for y in 0..height {
        for x in 0..width {
            // Rightward link.
            if x + 1 < width {
                channels.push(vec![id(x, y), id(x + 1, y)]);
            } else if wraparound && width > 2 {
                channels.push(vec![id(x, y), id(0, y)]);
            }
            // Downward link.
            if y + 1 < height {
                channels.push(vec![id(x, y), id(x, y + 1)]);
            } else if wraparound && height > 2 {
                channels.push(vec![id(x, y), id(x, 0)]);
            }
        }
    }
    let kind = if wraparound { "torus" } else { "grid" };
    let diameter = dim_diameter(width, wraparound) + dim_diameter(height, wraparound);
    Topology::with_arithmetic_router(
        format!("{kind} {width}x{height}"),
        n,
        channels,
        ArithmeticRouter::Grid {
            width: width as u32,
            height: height as u32,
            wrap: wraparound,
        },
        diameter,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_5x5_matches_paper_diameter() {
        let t = mesh2d(5, 5, false);
        assert_eq!(t.num_pes(), 25);
        assert_eq!(t.diameter(), 8); // paper: grid diameters range from 8 ...
        t.check_invariants();
    }

    #[test]
    fn grid_20x20_matches_paper_diameter() {
        let t = mesh2d(20, 20, false);
        assert_eq!(t.num_pes(), 400);
        assert_eq!(t.diameter(), 38); // ... to 38
    }

    #[test]
    fn grid_degrees() {
        let t = mesh2d(4, 4, false);
        assert_eq!(t.degree(PeId(0)), 2); // corner
        assert_eq!(t.degree(PeId(1)), 3); // edge
        assert_eq!(t.degree(PeId(5)), 4); // interior
    }

    #[test]
    fn torus_every_pe_has_degree_four() {
        let t = mesh2d(5, 5, true);
        for pe in t.pes() {
            assert_eq!(t.degree(pe), 4);
        }
        assert_eq!(t.diameter(), 4); // floor(5/2) + floor(5/2)
        t.check_invariants();
    }

    #[test]
    fn torus_10x10_diameter() {
        assert_eq!(mesh2d(10, 10, true).diameter(), 10);
    }

    #[test]
    fn channel_count_grid() {
        // An n x m grid has n(m-1) + m(n-1) links.
        let t = mesh2d(3, 4, false);
        assert_eq!(t.num_channels(), 3 * 3 + 4 * 2);
    }

    #[test]
    fn channel_count_torus() {
        // A torus (both dims > 2) has 2nm links.
        let t = mesh2d(4, 5, true);
        assert_eq!(t.num_channels(), 2 * 20);
    }

    #[test]
    fn degenerate_width_two_torus_has_no_duplicate_links() {
        let t = mesh2d(2, 3, true);
        // Width 2: wrap link would duplicate the existing horizontal link.
        assert_eq!(t.degree(PeId(0)), 3); // right + down + wrap-down
        t.check_invariants();
    }

    #[test]
    fn single_row_mesh_is_a_path() {
        let t = mesh2d(6, 1, false);
        assert_eq!(t.diameter(), 5);
        assert_eq!(t.num_channels(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        mesh2d(0, 3, false);
    }

    /// The tentpole's routing contract: the arithmetic router must agree
    /// with the classic dense BFS table on every (from, to) pair — same
    /// distances AND the same next hops, since next hops feed the golden
    /// reports.
    #[test]
    fn arithmetic_router_matches_dense_bfs_tables() {
        for (w, h, wrap) in [
            (5, 5, false),
            (5, 5, true),
            (4, 7, false),
            (4, 7, true),
            (2, 3, true),
            (6, 1, false),
            (3, 3, true),
        ] {
            let arith = mesh2d(w, h, wrap);
            // Rebuild the same graph through the generic constructor, which
            // attaches the dense all-pairs router at this size.
            let dense = dense_twin(&arith);
            for a in arith.pes() {
                for b in arith.pes() {
                    assert_eq!(
                        arith.distance(a, b),
                        dense.distance(a, b),
                        "distance {a}->{b} on {}",
                        arith.name()
                    );
                    assert_eq!(
                        arith.next_hop(a, b),
                        dense.next_hop(a, b),
                        "next_hop {a}->{b} on {}",
                        arith.name()
                    );
                }
            }
            assert_eq!(arith.diameter(), dense.diameter(), "{}", arith.name());
            assert!((arith.mean_distance() - dense.mean_distance()).abs() < 1e-9);
        }
    }

    fn dense_twin(t: &Topology) -> Topology {
        let channels = (0..t.num_channels())
            .map(|c| {
                t.channel_members(crate::graph::ChannelId(c as u32))
                    .to_vec()
            })
            .collect();
        Topology::from_channels(t.name().to_string(), t.num_pes(), channels)
    }

    /// Regression for the `diameter() -> u16` truncation: a path of 70 000
    /// PEs has eccentricity 69 999 > 65 535, which the old u16 return
    /// silently wrapped to 4 463.
    #[test]
    fn long_path_diameter_exceeds_u16() {
        let t = mesh2d(70_000, 1, false);
        assert_eq!(t.diameter(), 69_999);
        assert!(t.diameter() > u16::MAX as u32);
        assert_eq!(t.distance(PeId(0), PeId(69_999)), 69_999);
        assert_eq!(t.next_hop(PeId(0), PeId(69_999)), PeId(1));
    }
}
