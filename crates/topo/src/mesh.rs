//! The 2-D nearest-neighbour grid.
//!
//! The paper's text says "the 2-dimensional grid (nearest neighbor grid) with
//! wrap-around connections", but the diameters it quotes (8 for 5×5 up to 38
//! for 20×20) are those of the *plain* mesh — a 20×20 torus has diameter 20.
//! Both variants are provided; the experiment presets follow the quoted
//! diameters and use `wraparound = false` (see DESIGN.md).

use crate::graph::{PeId, Topology};

/// Build a `width × height` 2-D mesh. With `wraparound`, opposite edges are
/// joined into a torus.
///
/// PEs are numbered row-major: PE at `(x, y)` is `y * width + x`.
///
/// # Panics
///
/// Panics if either dimension is zero, or if the mesh would have a single PE
/// (no channels).
pub fn mesh2d(width: usize, height: usize, wraparound: bool) -> Topology {
    assert!(width > 0 && height > 0, "mesh dimensions must be positive");
    assert!(width * height > 1, "a 1x1 mesh has no channels");
    let id = |x: usize, y: usize| PeId((y * width + x) as u32);
    let mut channels = Vec::with_capacity(2 * width * height);
    for y in 0..height {
        for x in 0..width {
            // Rightward link.
            if x + 1 < width {
                channels.push(vec![id(x, y), id(x + 1, y)]);
            } else if wraparound && width > 2 {
                channels.push(vec![id(x, y), id(0, y)]);
            }
            // Downward link.
            if y + 1 < height {
                channels.push(vec![id(x, y), id(x, y + 1)]);
            } else if wraparound && height > 2 {
                channels.push(vec![id(x, y), id(x, 0)]);
            }
        }
    }
    let kind = if wraparound { "torus" } else { "grid" };
    Topology::from_channels(format!("{kind} {width}x{height}"), width * height, channels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_5x5_matches_paper_diameter() {
        let t = mesh2d(5, 5, false);
        assert_eq!(t.num_pes(), 25);
        assert_eq!(t.diameter(), 8); // paper: grid diameters range from 8 ...
        t.check_invariants();
    }

    #[test]
    fn grid_20x20_matches_paper_diameter() {
        let t = mesh2d(20, 20, false);
        assert_eq!(t.num_pes(), 400);
        assert_eq!(t.diameter(), 38); // ... to 38
    }

    #[test]
    fn grid_degrees() {
        let t = mesh2d(4, 4, false);
        assert_eq!(t.degree(PeId(0)), 2); // corner
        assert_eq!(t.degree(PeId(1)), 3); // edge
        assert_eq!(t.degree(PeId(5)), 4); // interior
    }

    #[test]
    fn torus_every_pe_has_degree_four() {
        let t = mesh2d(5, 5, true);
        for pe in t.pes() {
            assert_eq!(t.degree(pe), 4);
        }
        assert_eq!(t.diameter(), 4); // floor(5/2) + floor(5/2)
        t.check_invariants();
    }

    #[test]
    fn torus_10x10_diameter() {
        assert_eq!(mesh2d(10, 10, true).diameter(), 10);
    }

    #[test]
    fn channel_count_grid() {
        // An n x m grid has n(m-1) + m(n-1) links.
        let t = mesh2d(3, 4, false);
        assert_eq!(t.num_channels(), 3 * 3 + 4 * 2);
    }

    #[test]
    fn channel_count_torus() {
        // A torus (both dims > 2) has 2nm links.
        let t = mesh2d(4, 5, true);
        assert_eq!(t.num_channels(), 2 * 20);
    }

    #[test]
    fn degenerate_width_two_torus_has_no_duplicate_links() {
        let t = mesh2d(2, 3, true);
        // Width 2: wrap link would duplicate the existing horizontal link.
        assert_eq!(t.degree(PeId(0)), 3); // right + down + wrap-down
        t.check_invariants();
    }

    #[test]
    fn single_row_mesh_is_a_path() {
        let t = mesh2d(6, 1, false);
        assert_eq!(t.diameter(), 5);
        assert_eq!(t.num_channels(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        mesh2d(0, 3, false);
    }
}
