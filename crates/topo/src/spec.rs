//! Declarative topology specifications.
//!
//! A [`TopologySpec`] is a small serializable value describing which topology
//! to build; `build()` turns it into a concrete [`Topology`]. Specs also
//! parse from compact strings (`"grid:10x10"`, `"dlm:5x20x20"`,
//! `"hypercube:7"`, `"rand:100000x4"`), which the CLI and benchmark
//! harnesses use. All size arithmetic is checked: a spec whose PE count
//! overflows (or exceeds the `u32` id space) is a loud error naming the
//! offending token, never a wrapped nonsense count.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::graph::Topology;
use crate::{dlm, graph, hypercube, kary, mesh, misc};

/// Seed for the `rand:NxD` topology family: the graph is a pure function of
/// `(nodes, degree)` and this constant, so a spec names one graph forever.
const RANDOM_TOPOLOGY_SEED: u64 = 0x00C0_FFEE_5EED_5EED;

/// A description of an interconnection topology.
///
/// ```
/// use oracle_topo::TopologySpec;
///
/// let spec: TopologySpec = "grid:10".parse().unwrap();
/// let topo = spec.build();
/// assert_eq!(topo.num_pes(), 100);
/// assert_eq!(topo.diameter(), 18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// 2-D nearest-neighbour mesh; `wraparound` joins opposite edges.
    Mesh2D {
        width: usize,
        height: usize,
        wraparound: bool,
    },
    /// Double-lattice-mesh with buses spanning `span` PEs.
    DoubleLatticeMesh {
        span: usize,
        width: usize,
        height: usize,
    },
    /// Binary hypercube with `2^dim` PEs.
    Hypercube { dim: u32 },
    /// A cycle of `n` PEs.
    Ring { n: usize },
    /// Every pair of PEs directly linked.
    Complete { n: usize },
    /// PE 0 at the hub, all others leaves.
    Star { n: usize },
    /// All PEs on one shared bus.
    SingleBus { n: usize },
    /// k-ary n-cube (`k^n` PEs; ring/torus/hypercube generalization).
    KAryNCube { k: usize, n: u32 },
    /// Complete `arity`-ary tree of the given depth.
    Tree { arity: usize, depth: u32 },
    /// Seeded connected random graph: a ring plus random chords up to
    /// roughly `degree` per PE. Deterministic per `(nodes, degree)`.
    Random { nodes: u32, degree: u32 },
}

impl TopologySpec {
    /// The paper's square grid of `side × side` PEs (no wraparound; see
    /// DESIGN.md on the grid/torus discrepancy).
    pub fn grid(side: usize) -> Self {
        TopologySpec::Mesh2D {
            width: side,
            height: side,
            wraparound: false,
        }
    }

    /// The paper's DLM presets: span 5 for sides divisible by 5, span 4
    /// otherwise (matching the `5 20 20` / `4 16 16` plot headers).
    pub fn dlm(side: usize) -> Self {
        let span = if side.is_multiple_of(5) { 5 } else { 4 };
        TopologySpec::DoubleLatticeMesh {
            span,
            width: side,
            height: side,
        }
    }

    /// Number of PEs this spec will produce, with checked arithmetic: a
    /// count that overflows or exceeds the `u32` PE id space is an error
    /// naming the offending spec token rather than a silently wrapped
    /// value.
    pub fn try_num_pes(&self) -> Result<usize, String> {
        let fit = |n: u64| -> Result<usize, String> {
            if u32::try_from(n).is_err() {
                return Err(format!(
                    "spec token {self}: PE count {n} exceeds the u32 id space"
                ));
            }
            Ok(n as usize)
        };
        let overflow = || format!("spec token {self}: PE count overflows");
        match *self {
            TopologySpec::Mesh2D { width, height, .. }
            | TopologySpec::DoubleLatticeMesh { width, height, .. } => (width as u64)
                .checked_mul(height as u64)
                .ok_or_else(overflow)
                .and_then(fit),
            TopologySpec::Hypercube { dim } => {
                if dim >= 32 {
                    return Err(overflow());
                }
                fit(1u64 << dim)
            }
            TopologySpec::Ring { n }
            | TopologySpec::Complete { n }
            | TopologySpec::Star { n }
            | TopologySpec::SingleBus { n } => fit(n as u64),
            TopologySpec::KAryNCube { k, n } => {
                (k as u64).checked_pow(n).ok_or_else(overflow).and_then(fit)
            }
            TopologySpec::Tree { arity, depth } => {
                let mut size = 0u64;
                let mut level = 1u64;
                for _ in 0..=depth {
                    size = size.checked_add(level).ok_or_else(overflow)?;
                    level = level.checked_mul(arity as u64).ok_or_else(overflow)?;
                }
                fit(size)
            }
            TopologySpec::Random { nodes, .. } => Ok(nodes as usize),
        }
    }

    /// Number of PEs this spec will produce.
    ///
    /// # Panics
    ///
    /// Panics if the count overflows; fallible callers (parsers, loaders)
    /// should prefer [`TopologySpec::try_num_pes`].
    pub fn num_pes(&self) -> usize {
        self.try_num_pes().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Construct the topology.
    pub fn build(&self) -> Topology {
        match *self {
            TopologySpec::Mesh2D {
                width,
                height,
                wraparound,
            } => mesh::mesh2d(width, height, wraparound),
            TopologySpec::DoubleLatticeMesh {
                span,
                width,
                height,
            } => dlm::double_lattice_mesh(span, width, height),
            TopologySpec::Hypercube { dim } => hypercube::hypercube(dim),
            TopologySpec::Ring { n } => misc::ring(n),
            TopologySpec::Complete { n } => misc::complete(n),
            TopologySpec::Star { n } => misc::star(n),
            TopologySpec::SingleBus { n } => misc::single_bus(n),
            TopologySpec::KAryNCube { k, n } => kary::kary_ncube(k, n),
            TopologySpec::Tree { arity, depth } => misc::tree(arity, depth),
            TopologySpec::Random { nodes, degree } => {
                graph::random_regular(nodes, degree, RANDOM_TOPOLOGY_SEED)
            }
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologySpec::Mesh2D {
                width,
                height,
                wraparound,
            } => {
                let kind = if wraparound { "torus" } else { "grid" };
                write!(f, "{kind}:{width}x{height}")
            }
            TopologySpec::DoubleLatticeMesh {
                span,
                width,
                height,
            } => write!(f, "dlm:{span}x{width}x{height}"),
            TopologySpec::Hypercube { dim } => write!(f, "hypercube:{dim}"),
            TopologySpec::Ring { n } => write!(f, "ring:{n}"),
            TopologySpec::Complete { n } => write!(f, "complete:{n}"),
            TopologySpec::Star { n } => write!(f, "star:{n}"),
            TopologySpec::SingleBus { n } => write!(f, "bus:{n}"),
            TopologySpec::KAryNCube { k, n } => write!(f, "kary:{k}x{n}"),
            TopologySpec::Tree { arity, depth } => write!(f, "tree:{arity}x{depth}"),
            TopologySpec::Random { nodes, degree } => write!(f, "rand:{nodes}x{degree}"),
        }
    }
}

/// Error parsing a [`TopologySpec`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError(pub String);

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology spec: {}", self.0)
    }
}

impl std::error::Error for ParseSpecError {}

impl FromStr for TopologySpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseSpecError(s.to_string());
        let (kind, args) = s.split_once(':').ok_or_else(err)?;
        let nums: Vec<usize> = args
            .split('x')
            .map(|p| p.parse().map_err(|_| err()))
            .collect::<Result<_, _>>()?;
        let spec = match (kind, nums.as_slice()) {
            ("grid", [w, h]) => TopologySpec::Mesh2D {
                width: *w,
                height: *h,
                wraparound: false,
            },
            ("grid", [side]) => TopologySpec::grid(*side),
            ("torus", [w, h]) => TopologySpec::Mesh2D {
                width: *w,
                height: *h,
                wraparound: true,
            },
            ("torus", [side]) => TopologySpec::Mesh2D {
                width: *side,
                height: *side,
                wraparound: true,
            },
            ("dlm", [span, w, h]) => TopologySpec::DoubleLatticeMesh {
                span: *span,
                width: *w,
                height: *h,
            },
            ("dlm", [side]) => TopologySpec::dlm(*side),
            ("hypercube", [dim]) => TopologySpec::Hypercube { dim: *dim as u32 },
            ("ring", [n]) => TopologySpec::Ring { n: *n },
            ("complete", [n]) => TopologySpec::Complete { n: *n },
            ("star", [n]) => TopologySpec::Star { n: *n },
            ("bus", [n]) => TopologySpec::SingleBus { n: *n },
            ("kary", [k, n]) => TopologySpec::KAryNCube {
                k: *k,
                n: *n as u32,
            },
            ("tree", [arity, depth]) => TopologySpec::Tree {
                arity: *arity,
                depth: *depth as u32,
            },
            ("rand", [nodes, degree]) => TopologySpec::Random {
                nodes: u32::try_from(*nodes)
                    .map_err(|_| ParseSpecError(format!("{s} (node count exceeds u32)")))?,
                degree: u32::try_from(*degree)
                    .map_err(|_| ParseSpecError(format!("{s} (degree exceeds u32)")))?,
            },
            _ => return Err(err()),
        };
        // Size arithmetic is checked at parse time so a CLI user sees the
        // offending token, not a downstream panic.
        spec.try_num_pes().map_err(ParseSpecError)?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_spec_sizes() {
        let specs = [
            TopologySpec::grid(5),
            TopologySpec::dlm(10),
            TopologySpec::Hypercube { dim: 5 },
            TopologySpec::Ring { n: 9 },
            TopologySpec::Complete { n: 6 },
            TopologySpec::Star { n: 7 },
            TopologySpec::SingleBus { n: 4 },
            TopologySpec::KAryNCube { k: 3, n: 3 },
            TopologySpec::Tree { arity: 2, depth: 4 },
            TopologySpec::Random {
                nodes: 50,
                degree: 4,
            },
        ];
        for spec in specs {
            let t = spec.build();
            assert_eq!(t.num_pes(), spec.num_pes(), "{spec}");
        }
    }

    #[test]
    fn dlm_preset_spans() {
        assert_eq!(
            TopologySpec::dlm(20),
            TopologySpec::DoubleLatticeMesh {
                span: 5,
                width: 20,
                height: 20
            }
        );
        assert_eq!(
            TopologySpec::dlm(16),
            TopologySpec::DoubleLatticeMesh {
                span: 4,
                width: 16,
                height: 16
            }
        );
    }

    #[test]
    fn display_and_parse_round_trip() {
        let specs = [
            TopologySpec::grid(10),
            TopologySpec::Mesh2D {
                width: 4,
                height: 6,
                wraparound: true,
            },
            TopologySpec::dlm(20),
            TopologySpec::Hypercube { dim: 7 },
            TopologySpec::Ring { n: 12 },
            TopologySpec::Complete { n: 5 },
            TopologySpec::Star { n: 9 },
            TopologySpec::SingleBus { n: 16 },
            TopologySpec::KAryNCube { k: 4, n: 3 },
            TopologySpec::Tree { arity: 3, depth: 2 },
            TopologySpec::Random {
                nodes: 1000,
                degree: 4,
            },
        ];
        for spec in specs {
            let parsed: TopologySpec = spec.to_string().parse().unwrap();
            assert_eq!(parsed, spec);
        }
    }

    #[test]
    fn parse_shorthand_forms() {
        assert_eq!(
            "grid:8".parse::<TopologySpec>().unwrap(),
            TopologySpec::grid(8)
        );
        assert_eq!(
            "dlm:10".parse::<TopologySpec>().unwrap(),
            TopologySpec::dlm(10)
        );
        assert_eq!(
            "dlm:5x20x20".parse::<TopologySpec>().unwrap(),
            TopologySpec::DoubleLatticeMesh {
                span: 5,
                width: 20,
                height: 20
            }
        );
        assert_eq!(
            "torus:1000".parse::<TopologySpec>().unwrap(),
            TopologySpec::Mesh2D {
                width: 1000,
                height: 1000,
                wraparound: true,
            }
        );
        assert_eq!(
            "rand:100000x4".parse::<TopologySpec>().unwrap(),
            TopologySpec::Random {
                nodes: 100_000,
                degree: 4,
            }
        );
    }

    #[test]
    fn parse_rejects_nonsense() {
        for bad in ["", "grid", "grid:", "grid:axb", "blah:3", "hypercube:1x2"] {
            assert!(bad.parse::<TopologySpec>().is_err(), "{bad:?} parsed");
        }
    }

    /// Regression for the unchecked dimension multiply: an overflowing spec
    /// must parse to an error naming the offending token, not produce a
    /// wrapped PE count.
    #[test]
    fn overflowing_dimensions_are_rejected_with_the_token() {
        let spec = TopologySpec::Mesh2D {
            width: 10_000_000_000,
            height: 10_000_000_000,
            wraparound: false,
        };
        let err = spec.try_num_pes().unwrap_err();
        assert!(err.contains("grid:10000000000x10000000000"), "{err}");
        assert!(err.contains("overflows"), "{err}");

        let err = "grid:10000000000x10000000000"
            .parse::<TopologySpec>()
            .unwrap_err();
        assert!(err.0.contains("grid:10000000000x10000000000"), "{}", err.0);

        let err = TopologySpec::KAryNCube { k: 1000, n: 10 }
            .try_num_pes()
            .unwrap_err();
        assert!(err.contains("kary:1000x10"), "{err}");

        // Within u64 but beyond the u32 id space: also rejected, with the
        // actual count in the message.
        let err = "torus:100000x100000".parse::<TopologySpec>().unwrap_err();
        assert!(err.0.contains("exceeds the u32 id space"), "{}", err.0);

        let err = TopologySpec::Hypercube { dim: 40 }
            .try_num_pes()
            .unwrap_err();
        assert!(err.contains("hypercube:40"), "{err}");
    }

    #[test]
    fn million_pe_specs_count_without_building() {
        assert_eq!(
            "torus:1000x1000".parse::<TopologySpec>().unwrap().num_pes(),
            1_000_000
        );
        assert_eq!(
            "rand:1000000x4".parse::<TopologySpec>().unwrap().num_pes(),
            1_000_000
        );
    }
}
