//! Declarative topology specifications.
//!
//! A [`TopologySpec`] is a small serializable value describing which topology
//! to build; `build()` turns it into a concrete [`Topology`]. Specs also
//! parse from compact strings (`"grid:10x10"`, `"dlm:5x20x20"`,
//! `"hypercube:7"`), which the CLI and benchmark harnesses use.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::graph::Topology;
use crate::{dlm, hypercube, kary, mesh, misc};

/// A description of an interconnection topology.
///
/// ```
/// use oracle_topo::TopologySpec;
///
/// let spec: TopologySpec = "grid:10".parse().unwrap();
/// let topo = spec.build();
/// assert_eq!(topo.num_pes(), 100);
/// assert_eq!(topo.diameter(), 18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// 2-D nearest-neighbour mesh; `wraparound` joins opposite edges.
    Mesh2D {
        width: usize,
        height: usize,
        wraparound: bool,
    },
    /// Double-lattice-mesh with buses spanning `span` PEs.
    DoubleLatticeMesh {
        span: usize,
        width: usize,
        height: usize,
    },
    /// Binary hypercube with `2^dim` PEs.
    Hypercube { dim: u32 },
    /// A cycle of `n` PEs.
    Ring { n: usize },
    /// Every pair of PEs directly linked.
    Complete { n: usize },
    /// PE 0 at the hub, all others leaves.
    Star { n: usize },
    /// All PEs on one shared bus.
    SingleBus { n: usize },
    /// k-ary n-cube (`k^n` PEs; ring/torus/hypercube generalization).
    KAryNCube { k: usize, n: u32 },
    /// Complete `arity`-ary tree of the given depth.
    Tree { arity: usize, depth: u32 },
}

impl TopologySpec {
    /// The paper's square grid of `side × side` PEs (no wraparound; see
    /// DESIGN.md on the grid/torus discrepancy).
    pub fn grid(side: usize) -> Self {
        TopologySpec::Mesh2D {
            width: side,
            height: side,
            wraparound: false,
        }
    }

    /// The paper's DLM presets: span 5 for sides divisible by 5, span 4
    /// otherwise (matching the `5 20 20` / `4 16 16` plot headers).
    pub fn dlm(side: usize) -> Self {
        let span = if side.is_multiple_of(5) { 5 } else { 4 };
        TopologySpec::DoubleLatticeMesh {
            span,
            width: side,
            height: side,
        }
    }

    /// Number of PEs this spec will produce.
    pub fn num_pes(&self) -> usize {
        match *self {
            TopologySpec::Mesh2D { width, height, .. } => width * height,
            TopologySpec::DoubleLatticeMesh { width, height, .. } => width * height,
            TopologySpec::Hypercube { dim } => 1 << dim,
            TopologySpec::Ring { n }
            | TopologySpec::Complete { n }
            | TopologySpec::Star { n }
            | TopologySpec::SingleBus { n } => n,
            TopologySpec::KAryNCube { k, n } => k.pow(n),
            TopologySpec::Tree { arity, depth } => (0..=depth).map(|d| arity.pow(d)).sum(),
        }
    }

    /// Construct the topology.
    pub fn build(&self) -> Topology {
        match *self {
            TopologySpec::Mesh2D {
                width,
                height,
                wraparound,
            } => mesh::mesh2d(width, height, wraparound),
            TopologySpec::DoubleLatticeMesh {
                span,
                width,
                height,
            } => dlm::double_lattice_mesh(span, width, height),
            TopologySpec::Hypercube { dim } => hypercube::hypercube(dim),
            TopologySpec::Ring { n } => misc::ring(n),
            TopologySpec::Complete { n } => misc::complete(n),
            TopologySpec::Star { n } => misc::star(n),
            TopologySpec::SingleBus { n } => misc::single_bus(n),
            TopologySpec::KAryNCube { k, n } => kary::kary_ncube(k, n),
            TopologySpec::Tree { arity, depth } => misc::tree(arity, depth),
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologySpec::Mesh2D {
                width,
                height,
                wraparound,
            } => {
                let kind = if wraparound { "torus" } else { "grid" };
                write!(f, "{kind}:{width}x{height}")
            }
            TopologySpec::DoubleLatticeMesh {
                span,
                width,
                height,
            } => write!(f, "dlm:{span}x{width}x{height}"),
            TopologySpec::Hypercube { dim } => write!(f, "hypercube:{dim}"),
            TopologySpec::Ring { n } => write!(f, "ring:{n}"),
            TopologySpec::Complete { n } => write!(f, "complete:{n}"),
            TopologySpec::Star { n } => write!(f, "star:{n}"),
            TopologySpec::SingleBus { n } => write!(f, "bus:{n}"),
            TopologySpec::KAryNCube { k, n } => write!(f, "kary:{k}x{n}"),
            TopologySpec::Tree { arity, depth } => write!(f, "tree:{arity}x{depth}"),
        }
    }
}

/// Error parsing a [`TopologySpec`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError(pub String);

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology spec: {}", self.0)
    }
}

impl std::error::Error for ParseSpecError {}

impl FromStr for TopologySpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseSpecError(s.to_string());
        let (kind, args) = s.split_once(':').ok_or_else(err)?;
        let nums: Vec<usize> = args
            .split('x')
            .map(|p| p.parse().map_err(|_| err()))
            .collect::<Result<_, _>>()?;
        match (kind, nums.as_slice()) {
            ("grid", [w, h]) => Ok(TopologySpec::Mesh2D {
                width: *w,
                height: *h,
                wraparound: false,
            }),
            ("grid", [side]) => Ok(TopologySpec::grid(*side)),
            ("torus", [w, h]) => Ok(TopologySpec::Mesh2D {
                width: *w,
                height: *h,
                wraparound: true,
            }),
            ("dlm", [span, w, h]) => Ok(TopologySpec::DoubleLatticeMesh {
                span: *span,
                width: *w,
                height: *h,
            }),
            ("dlm", [side]) => Ok(TopologySpec::dlm(*side)),
            ("hypercube", [dim]) => Ok(TopologySpec::Hypercube { dim: *dim as u32 }),
            ("ring", [n]) => Ok(TopologySpec::Ring { n: *n }),
            ("complete", [n]) => Ok(TopologySpec::Complete { n: *n }),
            ("star", [n]) => Ok(TopologySpec::Star { n: *n }),
            ("bus", [n]) => Ok(TopologySpec::SingleBus { n: *n }),
            ("kary", [k, n]) => Ok(TopologySpec::KAryNCube {
                k: *k,
                n: *n as u32,
            }),
            ("tree", [arity, depth]) => Ok(TopologySpec::Tree {
                arity: *arity,
                depth: *depth as u32,
            }),
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_spec_sizes() {
        let specs = [
            TopologySpec::grid(5),
            TopologySpec::dlm(10),
            TopologySpec::Hypercube { dim: 5 },
            TopologySpec::Ring { n: 9 },
            TopologySpec::Complete { n: 6 },
            TopologySpec::Star { n: 7 },
            TopologySpec::SingleBus { n: 4 },
            TopologySpec::KAryNCube { k: 3, n: 3 },
            TopologySpec::Tree { arity: 2, depth: 4 },
        ];
        for spec in specs {
            let t = spec.build();
            assert_eq!(t.num_pes(), spec.num_pes(), "{spec}");
        }
    }

    #[test]
    fn dlm_preset_spans() {
        assert_eq!(
            TopologySpec::dlm(20),
            TopologySpec::DoubleLatticeMesh {
                span: 5,
                width: 20,
                height: 20
            }
        );
        assert_eq!(
            TopologySpec::dlm(16),
            TopologySpec::DoubleLatticeMesh {
                span: 4,
                width: 16,
                height: 16
            }
        );
    }

    #[test]
    fn display_and_parse_round_trip() {
        let specs = [
            TopologySpec::grid(10),
            TopologySpec::Mesh2D {
                width: 4,
                height: 6,
                wraparound: true,
            },
            TopologySpec::dlm(20),
            TopologySpec::Hypercube { dim: 7 },
            TopologySpec::Ring { n: 12 },
            TopologySpec::Complete { n: 5 },
            TopologySpec::Star { n: 9 },
            TopologySpec::SingleBus { n: 16 },
            TopologySpec::KAryNCube { k: 4, n: 3 },
            TopologySpec::Tree { arity: 3, depth: 2 },
        ];
        for spec in specs {
            let parsed: TopologySpec = spec.to_string().parse().unwrap();
            assert_eq!(parsed, spec);
        }
    }

    #[test]
    fn parse_shorthand_forms() {
        assert_eq!(
            "grid:8".parse::<TopologySpec>().unwrap(),
            TopologySpec::grid(8)
        );
        assert_eq!(
            "dlm:10".parse::<TopologySpec>().unwrap(),
            TopologySpec::dlm(10)
        );
        assert_eq!(
            "dlm:5x20x20".parse::<TopologySpec>().unwrap(),
            TopologySpec::DoubleLatticeMesh {
                span: 5,
                width: 20,
                height: 20
            }
        );
    }

    #[test]
    fn parse_rejects_nonsense() {
        for bad in ["", "grid", "grid:", "grid:axb", "blah:3", "hypercube:1x2"] {
            assert!(bad.parse::<TopologySpec>().is_err(), "{bad:?} parsed");
        }
    }
}
