//! Auxiliary topologies used by tests, examples, and ablation studies:
//! rings, complete graphs, stars, and a single shared bus.

use crate::graph::{PeId, Topology};

/// A ring of `n` PEs (`n == 2` degenerates to a single link).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 2, "a ring needs at least two PEs");
    let mut channels: Vec<Vec<PeId>> = (0..n - 1)
        .map(|i| vec![PeId(i as u32), PeId(i as u32 + 1)])
        .collect();
    if n > 2 {
        channels.push(vec![PeId(n as u32 - 1), PeId(0)]);
    }
    Topology::from_channels(format!("ring {n}"), n, channels)
}

/// The complete graph on `n` PEs: every pair directly linked. Models the
/// "global communication" regime the paper argues is unscalable.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> Topology {
    assert!(n >= 2, "a complete graph needs at least two PEs");
    let mut channels = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            channels.push(vec![PeId(i as u32), PeId(j as u32)]);
        }
    }
    Topology::from_channels(format!("complete {n}"), n, channels)
}

/// A star: PE 0 at the centre, all other PEs linked only to it. A worst case
/// for channel contention at the hub.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Topology {
    assert!(n >= 2, "a star needs at least two PEs");
    let channels = (1..n).map(|i| vec![PeId(0), PeId(i as u32)]).collect();
    Topology::from_channels(format!("star {n}"), n, channels)
}

/// A complete `arity`-ary tree of the given depth (depth 0 = a single
/// root — rejected, since a topology needs at least one channel; depth 1 =
/// a star). Trees match tree-structured computations well but concentrate
/// all cross-subtree traffic at the root — the classic bisection
/// bottleneck.
///
/// # Panics
///
/// Panics unless `arity >= 2`, `depth >= 1`, and the tree has at most
/// 65 536 PEs.
pub fn tree(arity: usize, depth: u32) -> Topology {
    assert!(arity >= 2, "tree arity must be at least 2");
    assert!(depth >= 1, "tree depth must be at least 1");
    // Node count: (arity^(depth+1) - 1) / (arity - 1).
    let mut size: u64 = 0;
    let mut level = 1u64;
    for _ in 0..=depth {
        size += level;
        level = level.checked_mul(arity as u64).expect("tree too large");
    }
    assert!(size <= 65_536, "tree with {size} PEs exceeds the limit");
    let size = size as usize;
    // Breadth-first numbering: children of i are arity*i + 1 ..= arity*i + arity.
    let mut channels = Vec::with_capacity(size - 1);
    for i in 0..size {
        for c in 1..=arity {
            let child = arity * i + c;
            if child < size {
                channels.push(vec![PeId(i as u32), PeId(child as u32)]);
            }
        }
    }
    Topology::from_channels(format!("tree {arity}^{depth}"), size, channels)
}

/// All `n` PEs on one shared bus: maximal contention, diameter 1.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn single_bus(n: usize) -> Topology {
    assert!(n >= 2, "a bus needs at least two PEs");
    let members = (0..n as u32).map(PeId).collect();
    Topology::from_channels(format!("bus {n}"), n, vec![members])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_diameter_is_half() {
        assert_eq!(ring(8).diameter(), 4);
        assert_eq!(ring(9).diameter(), 4);
        assert_eq!(ring(2).diameter(), 1);
        ring(7).check_invariants();
    }

    #[test]
    fn ring_degrees() {
        let t = ring(5);
        for pe in t.pes() {
            assert_eq!(t.degree(pe), 2);
        }
    }

    #[test]
    fn complete_diameter_is_one() {
        let t = complete(6);
        assert_eq!(t.diameter(), 1);
        assert_eq!(t.num_channels(), 15);
        for pe in t.pes() {
            assert_eq!(t.degree(pe), 5);
        }
        t.check_invariants();
    }

    #[test]
    fn star_routes_through_hub() {
        let t = star(5);
        assert_eq!(t.diameter(), 2);
        assert_eq!(t.degree(PeId(0)), 4);
        assert_eq!(t.degree(PeId(3)), 1);
        assert_eq!(t.next_hop(PeId(1), PeId(4)), PeId(0));
        t.check_invariants();
    }

    #[test]
    fn single_bus_is_one_channel() {
        let t = single_bus(10);
        assert_eq!(t.num_channels(), 1);
        assert_eq!(t.diameter(), 1);
        for pe in t.pes() {
            assert_eq!(t.degree(pe), 9);
        }
        t.check_invariants();
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_ring_panics() {
        ring(1);
    }

    #[test]
    fn binary_tree_structure() {
        let t = tree(2, 3); // 15 nodes
        assert_eq!(t.num_pes(), 15);
        assert_eq!(t.num_channels(), 14);
        assert_eq!(t.diameter(), 6); // leaf -> root -> other leaf
        assert_eq!(t.degree(PeId(0)), 2);
        assert_eq!(t.degree(PeId(1)), 3); // parent + 2 children
        assert_eq!(t.degree(PeId(14)), 1); // leaf
        t.check_invariants();
    }

    #[test]
    fn ternary_tree_counts() {
        let t = tree(3, 2); // 1 + 3 + 9
        assert_eq!(t.num_pes(), 13);
        assert_eq!(t.diameter(), 4);
        t.check_invariants();
    }

    #[test]
    fn cross_subtree_routes_pass_the_root() {
        let t = tree(2, 2); // 7 nodes: 0; 1,2; 3,4,5,6
        assert_eq!(t.next_hop(PeId(3), PeId(6)), PeId(1));
        assert_eq!(t.next_hop(PeId(1), PeId(6)), PeId(0));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn unary_tree_panics() {
        tree(1, 3);
    }
}
