//! The concrete topology type: channel sets, adjacency, and routing tables.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a processing element, dense in `0..num_pes`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PeId(pub u32);

impl PeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// Identifier of a communication channel (link or bus), dense in
/// `0..num_channels`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// One entry of a PE's neighbour list: the neighbouring PE and the channel a
/// message to it travels over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The adjacent PE.
    pub pe: PeId,
    /// The channel connecting them (lowest-numbered one if several do).
    pub channel: ChannelId,
}

/// An interconnection topology: PEs, channels, adjacency, and shortest-path
/// routing.
///
/// Built via the constructors in [`crate::mesh`], [`crate::dlm`],
/// [`crate::hypercube`], [`crate::misc`], or generically through
/// [`Topology::from_channels`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    num_pes: usize,
    /// Member PEs of each channel, sorted.
    channels: Vec<Vec<PeId>>,
    /// Sorted neighbour list per PE (one entry per distinct neighbour).
    adj: Vec<Vec<Neighbor>>,
    /// Flattened `[from * num_pes + to]` next hop on a shortest path.
    next_hop: Vec<PeId>,
    /// Flattened `[from * num_pes + to]` shortest-path distance in hops.
    dist: Vec<u16>,
    diameter: u16,
}

impl Topology {
    /// Build a topology from the member sets of its channels.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes == 0`, a channel has fewer than two distinct
    /// members or an out-of-range member, or the resulting graph is not
    /// connected — all of those are construction bugs, not runtime
    /// conditions.
    pub fn from_channels(
        name: impl Into<String>,
        num_pes: usize,
        channels: Vec<Vec<PeId>>,
    ) -> Self {
        let name = name.into();
        assert!(num_pes > 0, "topology {name:?} has no PEs");

        // Normalize channel member sets.
        let mut norm: Vec<Vec<PeId>> = Vec::with_capacity(channels.len());
        for members in channels {
            let mut m = members;
            m.sort_unstable();
            m.dedup();
            assert!(
                m.len() >= 2,
                "channel in {name:?} has fewer than two distinct members"
            );
            assert!(
                m.last().unwrap().idx() < num_pes,
                "channel member out of range in {name:?}"
            );
            norm.push(m);
        }

        // Adjacency: lowest channel id wins when PEs share several channels.
        let mut adj: Vec<Vec<Neighbor>> = vec![Vec::new(); num_pes];
        for (cid, members) in norm.iter().enumerate() {
            let channel = ChannelId(cid as u32);
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    for (x, y) in [(a, b), (b, a)] {
                        if !adj[x.idx()].iter().any(|n| n.pe == y) {
                            adj[x.idx()].push(Neighbor { pe: y, channel });
                        }
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable_by_key(|n| n.pe);
        }

        // BFS from every source for distances and next hops.
        let mut dist = vec![u16::MAX; num_pes * num_pes];
        let mut next_hop = vec![PeId(u32::MAX); num_pes * num_pes];
        let mut diameter = 0u16;
        let mut queue = VecDeque::new();
        for src in 0..num_pes {
            let base = src * num_pes;
            dist[base + src] = 0;
            next_hop[base + src] = PeId(src as u32);
            queue.clear();
            queue.push_back(src);
            while let Some(v) = queue.pop_front() {
                let dv = dist[base + v];
                for n in &adj[v] {
                    let u = n.pe.idx();
                    if dist[base + u] == u16::MAX {
                        dist[base + u] = dv + 1;
                        // First hop from src toward u: if v is the source the
                        // first hop is u itself, otherwise inherit v's.
                        next_hop[base + u] = if v == src { n.pe } else { next_hop[base + v] };
                        diameter = diameter.max(dv + 1);
                        queue.push_back(u);
                    }
                }
            }
            assert!(
                dist[base..base + num_pes].iter().all(|&d| d != u16::MAX),
                "topology {name:?} is not connected (unreachable from PE {src})"
            );
        }

        Topology {
            name,
            num_pes,
            channels: norm,
            adj,
            next_hop,
            dist,
            diameter,
        }
    }

    /// Human-readable name, e.g. `"grid 10x10"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processing elements.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Number of channels (links plus buses).
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// All PE ids.
    pub fn pes(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.num_pes as u32).map(PeId)
    }

    /// The sorted member PEs of channel `c`.
    pub fn channel_members(&self, c: ChannelId) -> &[PeId] {
        &self.channels[c.idx()]
    }

    /// The sorted neighbour list of `pe`.
    #[inline]
    pub fn neighbors(&self, pe: PeId) -> &[Neighbor] {
        &self.adj[pe.idx()]
    }

    /// Number of distinct neighbours of `pe`.
    pub fn degree(&self, pe: PeId) -> usize {
        self.adj[pe.idx()].len()
    }

    /// True if `a` and `b` share a channel.
    pub fn is_neighbor(&self, a: PeId, b: PeId) -> bool {
        self.adj[a.idx()].iter().any(|n| n.pe == b)
    }

    /// The channel a single-hop message from `a` to its neighbour `b` uses.
    pub fn channel_between(&self, a: PeId, b: PeId) -> Option<ChannelId> {
        self.adj[a.idx()]
            .iter()
            .find(|n| n.pe == b)
            .map(|n| n.channel)
    }

    /// Shortest-path distance in hops.
    #[inline]
    pub fn distance(&self, from: PeId, to: PeId) -> u16 {
        self.dist[from.idx() * self.num_pes + to.idx()]
    }

    /// The neighbour of `from` that lies on a shortest path to `to`
    /// (deterministic: the BFS discovers neighbours in sorted order).
    /// Returns `from` itself when `from == to`.
    #[inline]
    pub fn next_hop(&self, from: PeId, to: PeId) -> PeId {
        self.next_hop[from.idx() * self.num_pes + to.idx()]
    }

    /// The network diameter in hops.
    #[inline]
    pub fn diameter(&self) -> u16 {
        self.diameter
    }

    /// Mean shortest-path distance over ordered pairs of distinct PEs.
    pub fn mean_distance(&self) -> f64 {
        if self.num_pes < 2 {
            return 0.0;
        }
        let sum: u64 = self.dist.iter().map(|&d| d as u64).sum();
        sum as f64 / (self.num_pes * (self.num_pes - 1)) as f64
    }

    /// Render the topology as Graphviz DOT (links as edges; buses as
    /// box-shaped hyperedge nodes connected to their members), for
    /// visual inspection with `dot -Tsvg`.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "graph \"{}\" {{", self.name);
        let _ = writeln!(out, "  node [shape=circle];");
        for (ci, members) in self.channels.iter().enumerate() {
            if members.len() == 2 {
                let _ = writeln!(out, "  p{} -- p{};", members[0].0, members[1].0);
            } else {
                let _ = writeln!(out, "  b{ci} [shape=box, label=\"bus {ci}\"];");
                for m in members {
                    let _ = writeln!(out, "  b{ci} -- p{};", m.0);
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Exhaustive structural self-check, used by tests: adjacency symmetry,
    /// routing consistency, and the triangle inequality on distances.
    pub fn check_invariants(&self) {
        for a in self.pes() {
            for n in self.neighbors(a) {
                assert!(self.is_neighbor(n.pe, a), "asymmetric adjacency");
                assert_eq!(self.distance(a, n.pe), 1, "neighbour at distance != 1");
                assert!(
                    self.channel_members(n.channel).contains(&a)
                        && self.channel_members(n.channel).contains(&n.pe),
                    "adjacency channel does not contain both endpoints"
                );
            }
            for b in self.pes() {
                let d = self.distance(a, b);
                assert!(d <= self.diameter, "distance exceeds diameter");
                assert_eq!(d, self.distance(b, a), "asymmetric distance");
                if a == b {
                    assert_eq!(d, 0);
                } else {
                    let hop = self.next_hop(a, b);
                    assert!(self.is_neighbor(a, hop), "next hop is not a neighbour");
                    assert_eq!(
                        self.distance(hop, b),
                        d - 1,
                        "next hop does not make progress"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path 0 - 1 - 2 plus a 3-member bus {0, 1, 3}.
    fn tiny() -> Topology {
        Topology::from_channels(
            "tiny",
            4,
            vec![
                vec![PeId(0), PeId(1)],
                vec![PeId(1), PeId(2)],
                vec![PeId(0), PeId(1), PeId(3)],
            ],
        )
    }

    #[test]
    fn adjacency_from_links_and_buses() {
        let t = tiny();
        assert_eq!(t.num_pes(), 4);
        assert_eq!(t.num_channels(), 3);
        let n0: Vec<u32> = t.neighbors(PeId(0)).iter().map(|n| n.pe.0).collect();
        assert_eq!(n0, vec![1, 3]);
        assert!(t.is_neighbor(PeId(1), PeId(3)));
        assert!(!t.is_neighbor(PeId(2), PeId(3)));
    }

    #[test]
    fn lowest_channel_wins_for_shared_pairs() {
        // PEs 0 and 1 share both channel 0 (the link) and channel 2 (the bus).
        let t = tiny();
        assert_eq!(t.channel_between(PeId(0), PeId(1)), Some(ChannelId(0)));
        assert_eq!(t.channel_between(PeId(1), PeId(3)), Some(ChannelId(2)));
        assert_eq!(t.channel_between(PeId(0), PeId(2)), None);
    }

    #[test]
    fn distances_and_diameter() {
        let t = tiny();
        assert_eq!(t.distance(PeId(0), PeId(0)), 0);
        assert_eq!(t.distance(PeId(0), PeId(2)), 2);
        assert_eq!(t.distance(PeId(3), PeId(2)), 2);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn next_hop_routes_along_shortest_paths() {
        let t = tiny();
        assert_eq!(t.next_hop(PeId(3), PeId(2)), PeId(1));
        assert_eq!(t.next_hop(PeId(0), PeId(2)), PeId(1));
        assert_eq!(t.next_hop(PeId(2), PeId(3)), PeId(1));
        assert_eq!(t.next_hop(PeId(1), PeId(1)), PeId(1));
    }

    #[test]
    fn invariants_hold() {
        tiny().check_invariants();
    }

    #[test]
    fn mean_distance_of_two_node_graph() {
        let t = Topology::from_channels("pair", 2, vec![vec![PeId(0), PeId(1)]]);
        assert_eq!(t.mean_distance(), 1.0);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn duplicate_members_are_deduped() {
        let t = Topology::from_channels("dup", 2, vec![vec![PeId(0), PeId(1), PeId(1), PeId(0)]]);
        assert_eq!(t.degree(PeId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_graph_panics() {
        Topology::from_channels(
            "split",
            4,
            vec![vec![PeId(0), PeId(1)], vec![PeId(2), PeId(3)]],
        );
    }

    #[test]
    #[should_panic(expected = "fewer than two")]
    fn degenerate_channel_panics() {
        Topology::from_channels(
            "loop",
            2,
            vec![vec![PeId(0), PeId(0)], vec![PeId(0), PeId(1)]],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_member_panics() {
        Topology::from_channels("oob", 2, vec![vec![PeId(0), PeId(5)]]);
    }

    #[test]
    fn dot_export_contains_links_and_buses() {
        let t = tiny();
        let dot = t.to_dot();
        assert!(dot.starts_with("graph \"tiny\""));
        assert!(dot.contains("p0 -- p1;"), "{dot}");
        assert!(dot.contains("b2 [shape=box"), "{dot}");
        assert!(dot.contains("b2 -- p3;"), "{dot}");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    #[should_panic(expected = "no PEs")]
    fn empty_topology_panics() {
        Topology::from_channels("none", 0, vec![]);
    }
}
