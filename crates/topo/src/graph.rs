//! The concrete topology type: channel sets, adjacency, and routing.
//!
//! Storage is compressed sparse rows (CSR) for both the channel member
//! sets and the per-PE neighbour lists, so a topology costs O(PEs + edges)
//! memory. Routing goes through a per-family `Router`: the regular
//! topologies (grid, torus, hypercube, k-ary n-cube) answer distance
//! queries arithmetically and carry no table at all; small arbitrary
//! graphs keep the classic dense all-pairs table; large arbitrary graphs
//! use a lazy BFS-on-demand router with a bounded row cache. All three
//! produce bit-identical next hops (pinned by tests): the next hop from
//! `a` toward `b` is always the first neighbour of `a`, in sorted PE-id
//! order, whose distance to `b` is one less than `a`'s.

use std::collections::VecDeque;
use std::fmt;
use std::io::BufRead;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Identifier of a processing element, dense in `0..num_pes`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PeId(pub u32);

impl PeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// Identifier of a communication channel (link or bus), dense in
/// `0..num_channels`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// One entry of a PE's neighbour list: the neighbouring PE and the channel a
/// message to it travels over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The adjacent PE.
    pub pe: PeId,
    /// The channel connecting them (lowest-numbered one if several do).
    pub channel: ChannelId,
}

/// A malformed topology specification or graph file. The message cites the
/// offending token or line and the grammar it violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Arbitrary graphs at or below this many PEs precompute the dense
/// all-pairs table; larger ones route through the lazy BFS router. The
/// regular families (grid/torus/hypercube/k-ary) never build a table.
pub const DENSE_ROUTER_LIMIT: usize = 2048;

/// Bound on the lazy router's cached BFS distance rows (one row is
/// `4 * num_pes` bytes); rows are evicted FIFO beyond this.
const LAZY_CACHE_ROWS: usize = 32;

/// How shortest-path queries are answered. Everything except `Dense` is
/// O(1) or O(active) memory; `Dense` is the classic O(n²) table kept only
/// for small arbitrary graphs.
enum Router {
    /// Flattened `[from * num_pes + to]` next-hop and distance tables.
    Dense { next_hop: Vec<PeId>, dist: Vec<u32> },
    /// 2-D mesh, row-major `id = y * width + x`; `wrap` adds per-dimension
    /// torus links on dimensions longer than 2.
    Grid { width: u32, height: u32, wrap: bool },
    /// Binary hypercube: distance is the Hamming distance of the ids.
    Hypercube,
    /// k-ary n-cube, digit strides `k^d`; per-dimension ring distance.
    KAry { k: u32, n: u32 },
    /// BFS on demand with a bounded per-target row cache.
    Lazy(LazyRouter),
}

impl fmt::Debug for Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Router::Dense { dist, .. } => write!(f, "Dense({} entries)", dist.len()),
            Router::Grid {
                width,
                height,
                wrap,
            } => {
                write!(f, "Grid({width}x{height}, wrap={wrap})")
            }
            Router::Hypercube => write!(f, "Hypercube"),
            Router::KAry { k, n } => write!(f, "KAry({k}^{n})"),
            Router::Lazy(_) => write!(f, "Lazy"),
        }
    }
}

impl Clone for Router {
    fn clone(&self) -> Self {
        match self {
            Router::Dense { next_hop, dist } => Router::Dense {
                next_hop: next_hop.clone(),
                dist: dist.clone(),
            },
            Router::Grid {
                width,
                height,
                wrap,
            } => Router::Grid {
                width: *width,
                height: *height,
                wrap: *wrap,
            },
            Router::Hypercube => Router::Hypercube,
            Router::KAry { k, n } => Router::KAry { k: *k, n: *n },
            // The cache is a pure memo — a clone starts cold.
            Router::Lazy(_) => Router::Lazy(LazyRouter::new()),
        }
    }
}

/// BFS-on-demand distance oracle for large arbitrary graphs. Rows are
/// keyed by the *target* PE (distances are symmetric on an undirected
/// graph), so one BFS serves both `distance(x, t)` for every `x` and the
/// whole neighbour scan of a `next_hop(_, t)` query.
///
/// Most queries never pay for a full row: a BFS out of the target stops
/// the instant the source is discovered, so the cost is the ball of
/// radius `dist(from, to)` around the target, not the whole graph —
/// hop-by-hop response routing on a million-PE graph would otherwise run
/// one full-graph BFS per hop. A target whose cumulative bounded work
/// exceeds a couple of full sweeps is promoted to a cached full row, so
/// hot sinks (the root PE collecting results) amortize to O(1) lookups.
/// Either path returns the exact distance and the same deterministic
/// hop, so cache state can never change simulation results.
struct LazyRouter {
    cache: Mutex<RowCache>,
}

#[derive(Default)]
struct RowCache {
    rows: std::collections::HashMap<u32, Vec<u32>>,
    fifo: VecDeque<u32>,
    /// Cumulative bounded-BFS node visits per target; a target is promoted
    /// to a full cached row once this exceeds [`PROMOTE_WORK_SWEEPS`] full
    /// sweeps. Cleared wholesale if it ever grows past
    /// [`WORK_LEDGER_CAP`] entries (only the amortization stats are lost).
    work: std::collections::HashMap<u32, u64>,
    scratch: BfsScratch,
}

/// Epoch-stamped scratch for the bounded searches: `dist[i]` is valid only
/// when `stamp[i] == epoch`, so queries reuse the buffers without an O(n)
/// clear between them.
#[derive(Default)]
struct BfsScratch {
    stamp: Vec<u32>,
    dist: Vec<u32>,
    epoch: u32,
    queue: VecDeque<u32>,
}

/// Bounded-work budget (in units of full BFS sweeps) a target may burn
/// before it is promoted to a cached full row.
const PROMOTE_WORK_SWEEPS: u64 = 2;

/// Hard cap on the work-ledger size; reaching it resets the ledger.
const WORK_LEDGER_CAP: usize = 8192;

impl LazyRouter {
    fn new() -> Self {
        LazyRouter {
            cache: Mutex::new(RowCache::default()),
        }
    }

    /// Exact `dist(from, target)` plus (when `want_hop`) the first
    /// neighbour of `from` in sorted PE-id order that lies one hop closer
    /// to `target` — identical to what the dense table would answer.
    ///
    /// Served from a cached full row when one exists; otherwise by a BFS
    /// from `target` that stops as soon as `from` is discovered. The early
    /// exit is sound for the hop too: when `from` first appears at depth
    /// `d`, every node at depth `d - 1` has already been discovered with
    /// its final distance, so the descending-neighbour scan sees exactly
    /// the distances the full row would hold.
    fn query(&self, topo: &Topology, from: PeId, target: PeId, want_hop: bool) -> (u32, PeId) {
        let mut cache = self.cache.lock().expect("lazy router cache poisoned");
        let cache = &mut *cache;
        if let Some(row) = cache.rows.get(&target.0) {
            return (row[from.idx()], hop_from_row(topo, from, row, want_hop));
        }

        let n = topo.num_pes;
        let scratch = &mut cache.scratch;
        if scratch.stamp.len() < n {
            scratch.stamp.resize(n, 0);
            scratch.dist.resize(n, 0);
        }
        scratch.epoch = scratch.epoch.wrapping_add(1);
        if scratch.epoch == 0 {
            // One O(n) reset every 2^32 queries keeps stale stamps from a
            // previous epoch cycle from aliasing the current one.
            scratch.stamp.fill(0);
            scratch.epoch = 1;
        }
        let epoch = scratch.epoch;
        scratch.queue.clear();
        scratch.stamp[target.idx()] = epoch;
        scratch.dist[target.idx()] = 0;
        scratch.queue.push_back(target.0);
        let mut visited = 1u64;
        let mut found: Option<u32> = None;
        'bfs: while let Some(v) = scratch.queue.pop_front() {
            let dv = scratch.dist[v as usize];
            for nb in topo.neighbors(PeId(v)) {
                let u = nb.pe.idx();
                if scratch.stamp[u] != epoch {
                    scratch.stamp[u] = epoch;
                    scratch.dist[u] = dv + 1;
                    visited += 1;
                    if nb.pe == from {
                        found = Some(dv + 1);
                        break 'bfs;
                    }
                    scratch.queue.push_back(nb.pe.0);
                }
            }
        }
        let d = found.unwrap_or(u32::MAX);
        let hop = if want_hop {
            let want = d.checked_sub(1).expect("next_hop target must be reachable");
            topo.neighbors(from)
                .iter()
                .find(|n| scratch.stamp[n.pe.idx()] == epoch && scratch.dist[n.pe.idx()] == want)
                .map(|n| n.pe)
                .expect("connected graph has a descending neighbour")
        } else {
            from
        };

        // Amortization ledger: promote targets that keep costing ball
        // searches to a full cached row.
        if cache.work.len() >= WORK_LEDGER_CAP {
            cache.work.clear();
        }
        let spent = cache.work.entry(target.0).or_insert(0);
        *spent += visited;
        if *spent > PROMOTE_WORK_SWEEPS * n as u64 {
            cache.work.remove(&target.0);
            let row = topo.bfs_row(target);
            if cache.fifo.len() >= LAZY_CACHE_ROWS {
                if let Some(old) = cache.fifo.pop_front() {
                    cache.rows.remove(&old);
                }
            }
            cache.fifo.push_back(target.0);
            cache.rows.insert(target.0, row);
        }
        (d, hop)
    }
}

/// Descending-neighbour scan against a full cached row.
fn hop_from_row(topo: &Topology, from: PeId, row: &[u32], want_hop: bool) -> PeId {
    if !want_hop {
        return from;
    }
    let d = row[from.idx()];
    topo.neighbors(from)
        .iter()
        .find(|n| row[n.pe.idx()] == d - 1)
        .map(|n| n.pe)
        .expect("connected graph has a descending neighbour")
}

/// An interconnection topology: PEs, channels, adjacency, and shortest-path
/// routing.
///
/// Built via the constructors in [`crate::mesh`], [`crate::dlm`],
/// [`crate::hypercube`], [`crate::misc`], generically through
/// [`Topology::from_channels`], or from an edge-list file through
/// [`Topology::from_edge_list`].
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    num_pes: usize,
    /// CSR member PEs of each channel (sorted within a channel):
    /// channel `c` owns `chan_pes[chan_off[c]..chan_off[c + 1]]`.
    chan_off: Vec<usize>,
    chan_pes: Vec<PeId>,
    /// CSR sorted neighbour list per PE (one entry per distinct
    /// neighbour): PE `p` owns `adj[adj_off[p]..adj_off[p + 1]]`.
    adj_off: Vec<usize>,
    adj: Vec<Neighbor>,
    router: Router,
    diameter: u32,
}

impl Topology {
    /// Build a topology from the member sets of its channels.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes == 0`, a channel has fewer than two distinct
    /// members or an out-of-range member, or the resulting graph is not
    /// connected — all of those are construction bugs, not runtime
    /// conditions. (The fallible twin used by file loaders is
    /// [`Topology::try_from_channels`].)
    pub fn from_channels(
        name: impl Into<String>,
        num_pes: usize,
        channels: Vec<Vec<PeId>>,
    ) -> Self {
        match Self::try_from_channels(name, num_pes, channels) {
            Ok(t) => t,
            Err(SpecError(msg)) => panic!("{msg}"),
        }
    }

    /// Fallible [`Topology::from_channels`]: returns a grammar-citing
    /// [`SpecError`] instead of panicking, for loader-driven construction.
    pub fn try_from_channels(
        name: impl Into<String>,
        num_pes: usize,
        channels: Vec<Vec<PeId>>,
    ) -> Result<Self, SpecError> {
        let name = name.into();
        let mut t = Self::build_structure(name, num_pes, channels)?;
        t.attach_generic_router();
        Ok(t)
    }

    /// Build CSR structure and validate membership; the router is attached
    /// by the caller (arithmetic for the regular families, dense/lazy
    /// otherwise).
    fn build_structure(
        name: String,
        num_pes: usize,
        channels: Vec<Vec<PeId>>,
    ) -> Result<Self, SpecError> {
        if num_pes == 0 {
            return Err(SpecError(format!("topology {name:?} has no PEs")));
        }
        // All ids must round-trip through the u32 `PeId`/`ChannelId` space;
        // `try_from` instead of `as` so oversized graphs fail loudly
        // instead of wrapping.
        u32::try_from(num_pes).map_err(|_| {
            SpecError(format!(
                "topology {name:?} has {num_pes} PEs, more than PE ids (u32) can address"
            ))
        })?;
        u32::try_from(channels.len()).map_err(|_| {
            SpecError(format!(
                "topology {name:?} has {} channels, more than channel ids (u32) can address",
                channels.len()
            ))
        })?;

        // Normalize channel member sets into CSR.
        let mut chan_off: Vec<usize> = Vec::with_capacity(channels.len() + 1);
        chan_off.push(0);
        let mut chan_pes: Vec<PeId> = Vec::new();
        for members in channels {
            let mut m = members;
            m.sort_unstable();
            m.dedup();
            if m.len() < 2 {
                return Err(SpecError(format!(
                    "channel in {name:?} has fewer than two distinct members"
                )));
            }
            if m.last().unwrap().idx() >= num_pes {
                return Err(SpecError(format!(
                    "channel member out of range in {name:?}"
                )));
            }
            chan_pes.extend_from_slice(&m);
            chan_off.push(chan_pes.len());
        }

        // Adjacency: lowest channel id wins when PEs share several channels.
        // Emitted as (pe, neighbor) pairs, then sorted into CSR — channels
        // are visited in id order, so the *stable* sort keeps the lowest
        // channel first and `dedup_by_key` keeps exactly that entry.
        let mut pairs: Vec<(PeId, Neighbor)> = Vec::new();
        for cid in 0..chan_off.len() - 1 {
            let channel = ChannelId(cid as u32); // bounded by the try_from above
            let members = &chan_pes[chan_off[cid]..chan_off[cid + 1]];
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    pairs.push((a, Neighbor { pe: b, channel }));
                    pairs.push((b, Neighbor { pe: a, channel }));
                }
            }
        }
        pairs.sort_by_key(|(p, n)| (*p, n.pe));
        pairs.dedup_by_key(|(p, n)| (*p, n.pe));
        let mut adj_off: Vec<usize> = Vec::with_capacity(num_pes + 1);
        let mut adj: Vec<Neighbor> = Vec::with_capacity(pairs.len());
        let mut cursor = 0usize;
        adj_off.push(0);
        for (p, n) in pairs {
            while cursor < p.idx() {
                adj_off.push(adj.len());
                cursor += 1;
            }
            adj.push(n);
        }
        while cursor < num_pes {
            adj_off.push(adj.len());
            cursor += 1;
        }
        debug_assert_eq!(adj_off.len(), num_pes + 1);

        Ok(Topology {
            name,
            num_pes,
            chan_off,
            chan_pes,
            adj_off,
            adj,
            router: Router::Hypercube, // placeholder; callers attach the real one
            diameter: 0,
        })
    }

    /// Attach the router for an arbitrary graph: dense all-pairs tables up
    /// to [`DENSE_ROUTER_LIMIT`] PEs, the lazy BFS router beyond. Both
    /// verify connectivity.
    fn attach_generic_router(&mut self) {
        if self.num_pes <= DENSE_ROUTER_LIMIT {
            self.build_dense_router();
        } else {
            self.build_lazy_router();
        }
    }

    /// All-pairs BFS tables (small arbitrary graphs only).
    fn build_dense_router(&mut self) {
        let n = self.num_pes;
        let mut dist = vec![u32::MAX; n * n];
        let mut next_hop = vec![PeId(u32::MAX); n * n];
        let mut diameter = 0u32;
        let mut queue = VecDeque::new();
        for src in 0..n {
            let base = src * n;
            dist[base + src] = 0;
            next_hop[base + src] = PeId(src as u32);
            queue.clear();
            queue.push_back(src);
            while let Some(v) = queue.pop_front() {
                let dv = dist[base + v];
                for n in self.neighbors(PeId(v as u32)) {
                    let u = n.pe.idx();
                    if dist[base + u] == u32::MAX {
                        dist[base + u] = dv + 1;
                        // First hop from src toward u: if v is the source the
                        // first hop is u itself, otherwise inherit v's.
                        next_hop[base + u] = if v == src { n.pe } else { next_hop[base + v] };
                        diameter = diameter.max(dv + 1);
                        queue.push_back(u);
                    }
                }
            }
            assert!(
                dist[base..base + n].iter().all(|&d| d != u32::MAX),
                "topology {:?} is not connected (unreachable from PE {src})",
                self.name
            );
        }
        self.router = Router::Dense { next_hop, dist };
        self.diameter = diameter;
    }

    /// Lazy router for large arbitrary graphs: one BFS proves
    /// connectivity, a second (double-sweep) estimates the diameter.
    fn build_lazy_router(&mut self) {
        let row0 = self.bfs_row(PeId(0));
        let (far, ecc0) = row0
            .iter()
            .enumerate()
            .max_by_key(|&(_, &d)| (d != u32::MAX) as u64 * (d as u64 + 1))
            .map(|(i, &d)| (i, d))
            .expect("non-empty topology");
        assert!(
            !row0.contains(&u32::MAX),
            "topology {:?} is not connected (unreachable from PE 0)",
            self.name
        );
        let ecc_far = self
            .bfs_row(PeId(far as u32))
            .into_iter()
            .max()
            .unwrap_or(ecc0);
        // Double-sweep lower bound — exact on trees and typically exact or
        // near-exact on the sparse random graphs this router serves. The
        // machine uses it only to size histograms (which carry explicit
        // overflow counters), never for correctness.
        self.diameter = ecc_far.max(ecc0);
        self.router = Router::Lazy(LazyRouter::new());
    }

    /// One BFS from `src`: distances to every PE (`u32::MAX` = unreachable).
    fn bfs_row(&self, src: PeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_pes];
        let mut queue = VecDeque::new();
        dist[src.idx()] = 0;
        queue.push_back(src.idx());
        while let Some(v) = queue.pop_front() {
            let dv = dist[v];
            for n in self.neighbors(PeId(v as u32)) {
                let u = n.pe.idx();
                if dist[u] == u32::MAX {
                    dist[u] = dv + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Attach an arithmetic (table-free) router. `diameter` must be the
    /// exact diameter; the regular-family constructors compute it in
    /// closed form. Used by [`crate::mesh`], [`crate::hypercube`], and
    /// [`crate::kary`].
    pub(crate) fn with_arithmetic_router(
        name: impl Into<String>,
        num_pes: usize,
        channels: Vec<Vec<PeId>>,
        kind: ArithmeticRouter,
        diameter: u32,
    ) -> Self {
        let name = name.into();
        let mut t = match Self::build_structure(name, num_pes, channels) {
            Ok(t) => t,
            Err(SpecError(msg)) => panic!("{msg}"),
        };
        t.router = match kind {
            ArithmeticRouter::Grid {
                width,
                height,
                wrap,
            } => Router::Grid {
                width,
                height,
                wrap,
            },
            ArithmeticRouter::Hypercube => Router::Hypercube,
            ArithmeticRouter::KAry { k, n } => Router::KAry { k, n },
        };
        t.diameter = diameter;
        t
    }

    /// Replace this topology's router with the lazy BFS router (keeping
    /// the already-computed exact diameter). For tests pinning
    /// lazy-vs-dense routing equivalence on small graphs.
    pub fn force_lazy_router(mut self) -> Self {
        self.router = Router::Lazy(LazyRouter::new());
        self
    }

    /// Human-readable name, e.g. `"grid 10x10"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processing elements.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Number of channels (links plus buses).
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.chan_off.len() - 1
    }

    /// All PE ids.
    pub fn pes(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.num_pes as u32).map(PeId)
    }

    /// The sorted member PEs of channel `c`.
    #[inline]
    pub fn channel_members(&self, c: ChannelId) -> &[PeId] {
        &self.chan_pes[self.chan_off[c.idx()]..self.chan_off[c.idx() + 1]]
    }

    /// The sorted neighbour list of `pe`.
    #[inline]
    pub fn neighbors(&self, pe: PeId) -> &[Neighbor] {
        &self.adj[self.adj_off[pe.idx()]..self.adj_off[pe.idx() + 1]]
    }

    /// Number of distinct neighbours of `pe`.
    pub fn degree(&self, pe: PeId) -> usize {
        self.adj_off[pe.idx() + 1] - self.adj_off[pe.idx()]
    }

    /// True if `a` and `b` share a channel.
    pub fn is_neighbor(&self, a: PeId, b: PeId) -> bool {
        self.neighbors(a).binary_search_by_key(&b, |n| n.pe).is_ok()
    }

    /// The channel a single-hop message from `a` to its neighbour `b` uses.
    pub fn channel_between(&self, a: PeId, b: PeId) -> Option<ChannelId> {
        self.neighbors(a)
            .binary_search_by_key(&b, |n| n.pe)
            .ok()
            .map(|i| self.neighbors(a)[i].channel)
    }

    /// Shortest-path distance in hops.
    #[inline]
    pub fn distance(&self, from: PeId, to: PeId) -> u32 {
        match &self.router {
            Router::Dense { dist, .. } => dist[from.idx() * self.num_pes + to.idx()],
            Router::Grid {
                width,
                height,
                wrap,
            } => {
                let (w, h) = (*width, *height);
                let (x1, y1) = (from.0 % w, from.0 / w);
                let (x2, y2) = (to.0 % w, to.0 / w);
                let _ = h;
                dim_distance(x1, x2, w, *wrap) + dim_distance(y1, y2, h, *wrap)
            }
            Router::Hypercube => (from.0 ^ to.0).count_ones(),
            Router::KAry { k, n } => {
                let (mut a, mut b, mut d) = (from.0, to.0, 0u32);
                for _ in 0..*n {
                    d += dim_distance(a % k, b % k, *k, true);
                    a /= k;
                    b /= k;
                }
                d
            }
            Router::Lazy(lazy) => {
                if from == to {
                    0
                } else if self.is_neighbor(from, to) {
                    // The dominant query on neighbourhood-local strategies;
                    // answered without touching the row cache.
                    1
                } else {
                    lazy.query(self, from, to, false).0
                }
            }
        }
    }

    /// The neighbour of `from` that lies on a shortest path to `to`.
    /// Returns `from` itself when `from == to`.
    ///
    /// Deterministic across all routers: the hop is the first neighbour of
    /// `from` in sorted PE-id order whose distance to `to` is one less
    /// than `from`'s — exactly the hop the dense BFS table discovers,
    /// since BFS layers fill in sorted-neighbour order.
    #[inline]
    pub fn next_hop(&self, from: PeId, to: PeId) -> PeId {
        if from == to {
            return from;
        }
        match &self.router {
            Router::Dense { next_hop, .. } => next_hop[from.idx() * self.num_pes + to.idx()],
            Router::Lazy(lazy) => lazy.query(self, from, to, true).1,
            _ => {
                let d = self.distance(from, to);
                self.neighbors(from)
                    .iter()
                    .find(|n| self.distance(n.pe, to) == d - 1)
                    .map(|n| n.pe)
                    .expect("connected graph has a descending neighbour")
            }
        }
    }

    /// The network diameter in hops. Exact for every constructor except
    /// huge arbitrary graphs on the lazy router, where it is a
    /// double-sweep BFS estimate (a lower bound, exact on trees).
    #[inline]
    pub fn diameter(&self) -> u32 {
        self.diameter
    }

    /// Mean shortest-path distance over ordered pairs of distinct PEs.
    ///
    /// Closed-form for the arithmetic families, exact table sum for dense
    /// graphs; on the lazy router it is exact up to 4096 PEs (all-source
    /// BFS) and a deterministic 64-source sample beyond.
    pub fn mean_distance(&self) -> f64 {
        let n = self.num_pes as u128;
        if n < 2 {
            return 0.0;
        }
        let pairs = (n * (n - 1)) as f64;
        match &self.router {
            Router::Dense { dist, .. } => {
                let sum: u64 = dist.iter().map(|&d| d as u64).sum();
                sum as f64 / pairs
            }
            Router::Grid {
                width,
                height,
                wrap,
            } => {
                let (w, h) = (*width as u128, *height as u128);
                let sum =
                    dim_pair_sum(*width, *wrap) * h * h + dim_pair_sum(*height, *wrap) * w * w;
                sum as f64 / pairs
            }
            Router::Hypercube => {
                // Each of the `dim` bits differs in exactly half of the
                // n² ordered pairs.
                let dim = (self.num_pes as u64).trailing_zeros() as u128;
                let sum = dim * n * n / 2;
                sum as f64 / pairs
            }
            Router::KAry { k, n: dims } => {
                let per_dim = dim_pair_sum(*k, true);
                let rest = n / *k as u128; // k^(dims-1)
                let sum = per_dim * rest * rest * (*dims as u128);
                sum as f64 / pairs
            }
            Router::Lazy(_) => {
                let exact = self.num_pes <= 4096;
                let stride = if exact { 1 } else { (self.num_pes / 64).max(1) };
                let sources: Vec<usize> = (0..self.num_pes).step_by(stride).collect();
                let mut sum = 0u128;
                for &s in &sources {
                    let row = self.bfs_row(PeId(s as u32));
                    sum += row.iter().map(|&d| d as u128).sum::<u128>();
                }
                let per_source_pairs = (self.num_pes - 1) as f64;
                sum as f64 / (sources.len() as f64 * per_source_pairs)
            }
        }
    }

    /// Render the topology as Graphviz DOT (links as edges; buses as
    /// box-shaped hyperedge nodes connected to their members), for
    /// visual inspection with `dot -Tsvg`.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "graph \"{}\" {{", self.name);
        let _ = writeln!(out, "  node [shape=circle];");
        for ci in 0..self.num_channels() {
            let members = self.channel_members(ChannelId(ci as u32));
            if members.len() == 2 {
                let _ = writeln!(out, "  p{} -- p{};", members[0].0, members[1].0);
            } else {
                let _ = writeln!(out, "  b{ci} [shape=box, label=\"bus {ci}\"];");
                for m in members {
                    let _ = writeln!(out, "  b{ci} -- p{};", m.0);
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Exhaustive structural self-check, used by tests: adjacency symmetry,
    /// routing consistency, and the triangle inequality on distances.
    /// O(n²) — intended for small topologies.
    pub fn check_invariants(&self) {
        let lazy_estimate = matches!(self.router, Router::Lazy(_));
        for a in self.pes() {
            for n in self.neighbors(a) {
                assert!(self.is_neighbor(n.pe, a), "asymmetric adjacency");
                assert_eq!(self.distance(a, n.pe), 1, "neighbour at distance != 1");
                assert!(
                    self.channel_members(n.channel).contains(&a)
                        && self.channel_members(n.channel).contains(&n.pe),
                    "adjacency channel does not contain both endpoints"
                );
            }
            for b in self.pes() {
                let d = self.distance(a, b);
                if !lazy_estimate {
                    assert!(d <= self.diameter, "distance exceeds diameter");
                }
                assert_eq!(d, self.distance(b, a), "asymmetric distance");
                if a == b {
                    assert_eq!(d, 0);
                } else {
                    let hop = self.next_hop(a, b);
                    assert!(self.is_neighbor(a, hop), "next hop is not a neighbour");
                    assert_eq!(
                        self.distance(hop, b),
                        d - 1,
                        "next hop does not make progress"
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Edge-list loading and random graphs.
    // ------------------------------------------------------------------

    /// Load a topology from a streaming edge-list reader.
    ///
    /// Grammar (one declaration per line; `#` starts a comment):
    ///
    /// ```text
    /// pes <N>        # exactly one header line, before any edge
    /// <U> <V>        # one undirected link per line, 0 <= U,V < N
    /// ```
    ///
    /// Self-loops (`U == V`) and duplicate edges (in either orientation)
    /// are rejected loudly, as are ids that do not fit a `u32`. The graph
    /// must be connected.
    pub fn from_edge_list(
        name: impl Into<String>,
        reader: impl BufRead,
    ) -> Result<Self, SpecError> {
        const GRAMMAR: &str =
            "grammar: 'pes N' header, then one 'U V' edge per line with U != V, no duplicates";
        let name = name.into();
        let mut num_pes: Option<usize> = None;
        let mut edges: Vec<Vec<PeId>> = Vec::new();
        let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for (lineno, line) in reader.lines().enumerate() {
            let lineno = lineno + 1;
            let line = line.map_err(|e| SpecError(format!("edge list line {lineno}: {e}")))?;
            let body = line.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let mut tokens = body.split_whitespace();
            let (a, b) = (tokens.next(), tokens.next());
            if tokens.next().is_some() {
                return Err(SpecError(format!(
                    "edge list line {lineno}: too many fields in {body:?} ({GRAMMAR})"
                )));
            }
            match (a, b) {
                (Some("pes"), Some(count)) => {
                    if num_pes.is_some() {
                        return Err(SpecError(format!(
                            "edge list line {lineno}: duplicate 'pes' header ({GRAMMAR})"
                        )));
                    }
                    let n: u64 = count.parse().map_err(|_| {
                        SpecError(format!(
                            "edge list line {lineno}: bad PE count {count:?} ({GRAMMAR})"
                        ))
                    })?;
                    // PE ids are u32; reject counts the id space cannot hold.
                    if n == 0 || u32::try_from(n).is_err() {
                        return Err(SpecError(format!(
                            "edge list line {lineno}: PE count {n} exceeds u32 ({GRAMMAR})"
                        )));
                    }
                    num_pes = Some(n as usize);
                }
                (Some(u), Some(v)) => {
                    let Some(n) = num_pes else {
                        return Err(SpecError(format!(
                            "edge list line {lineno}: edge before 'pes N' header ({GRAMMAR})"
                        )));
                    };
                    let parse_id = |tok: &str| -> Result<u32, SpecError> {
                        let wide: u64 = tok.parse().map_err(|_| {
                            SpecError(format!(
                                "edge list line {lineno}: bad PE id {tok:?} ({GRAMMAR})"
                            ))
                        })?;
                        let id = u32::try_from(wide).map_err(|_| {
                            SpecError(format!(
                                "edge list line {lineno}: PE id {wide} exceeds u32 ({GRAMMAR})"
                            ))
                        })?;
                        if (id as usize) >= n {
                            return Err(SpecError(format!(
                                "edge list line {lineno}: PE id {id} out of range 0..{n} ({GRAMMAR})"
                            )));
                        }
                        Ok(id)
                    };
                    let (u, v) = (parse_id(u)?, parse_id(v)?);
                    if u == v {
                        return Err(SpecError(format!(
                            "edge list line {lineno}: self-loop '{u} {v}' ({GRAMMAR})"
                        )));
                    }
                    let key = (u.min(v), u.max(v));
                    if !seen.insert(key) {
                        return Err(SpecError(format!(
                            "edge list line {lineno}: duplicate edge '{u} {v}' ({GRAMMAR})"
                        )));
                    }
                    edges.push(vec![PeId(u), PeId(v)]);
                }
                _ => {
                    return Err(SpecError(format!(
                        "edge list line {lineno}: malformed line {body:?} ({GRAMMAR})"
                    )));
                }
            }
        }
        let Some(num_pes) = num_pes else {
            return Err(SpecError(format!(
                "edge list {name:?}: missing 'pes N' header ({GRAMMAR})"
            )));
        };
        Self::try_from_channels(name, num_pes, edges)
    }

    /// Load an edge-list topology from a file path (see
    /// [`Topology::from_edge_list`] for the grammar).
    pub fn from_edge_list_path(path: &std::path::Path) -> Result<Self, SpecError> {
        let file = std::fs::File::open(path)
            .map_err(|e| SpecError(format!("open edge list {}: {e}", path.display())))?;
        let name = format!("file {}", path.display());
        Self::from_edge_list(name, std::io::BufReader::new(file))
    }
}

/// The arithmetic router families the regular constructors attach.
pub(crate) enum ArithmeticRouter {
    Grid { width: u32, height: u32, wrap: bool },
    Hypercube,
    KAry { k: u32, n: u32 },
}

/// Per-dimension hop distance: plain `|a - b|`, or the ring distance when
/// the dimension wraps. Wrap links only exist on dimensions longer than 2
/// (a width-2 wrap would duplicate the existing link), matching the mesh
/// constructors.
#[inline]
fn dim_distance(a: u32, b: u32, size: u32, wrap: bool) -> u32 {
    let d = a.abs_diff(b);
    if wrap && size > 2 {
        d.min(size - d)
    } else {
        d
    }
}

/// Sum of `dim_distance` over all ordered coordinate pairs of one
/// dimension — the closed-form building block of `mean_distance`.
fn dim_pair_sum(size: u32, wrap: bool) -> u128 {
    let w = size as u128;
    if wrap && size > 2 {
        // Σ over ordered pairs of min(d, w - d) = w * floor(w² / 4).
        w * (w * w / 4)
    } else {
        // Σ over ordered pairs of |i - j| = w (w² - 1) / 3.
        w * (w * w - 1) / 3
    }
}

/// A connected random graph: a ring (guaranteeing connectivity) plus
/// seeded random chords up to roughly the requested `degree`. Ids and the
/// chord set are a pure function of `(n, degree, seed)`.
///
/// # Panics
///
/// Panics if `n < 3` or `degree < 2`.
pub fn random_regular(n: u32, degree: u32, seed: u64) -> Topology {
    assert!(n >= 3, "random graph needs at least 3 PEs");
    assert!(degree >= 2, "random graph needs degree >= 2");
    let mut channels: Vec<Vec<PeId>> = Vec::new();
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for i in 0..n {
        let j = (i + 1) % n;
        seen.insert((i.min(j), i.max(j)));
        channels.push(vec![PeId(i), PeId(j)]);
    }
    // SplitMix64 — self-contained so the topology crate stays dependency-free.
    let mut state = seed ^ ((n as u64) << 32) ^ degree as u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let chords = (n as u64 * (degree.saturating_sub(2)) as u64) / 2;
    let mut placed = 0u64;
    let mut attempts = 0u64;
    while placed < chords && attempts < chords * 16 {
        attempts += 1;
        let a = (next() % n as u64) as u32;
        let b = (next() % n as u64) as u32;
        if a == b {
            continue;
        }
        if seen.insert((a.min(b), a.max(b))) {
            channels.push(vec![PeId(a), PeId(b)]);
            placed += 1;
        }
    }
    Topology::from_channels(format!("rand {n}x{degree}"), n as usize, channels)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path 0 - 1 - 2 plus a 3-member bus {0, 1, 3}.
    fn tiny() -> Topology {
        Topology::from_channels(
            "tiny",
            4,
            vec![
                vec![PeId(0), PeId(1)],
                vec![PeId(1), PeId(2)],
                vec![PeId(0), PeId(1), PeId(3)],
            ],
        )
    }

    #[test]
    fn adjacency_from_links_and_buses() {
        let t = tiny();
        assert_eq!(t.num_pes(), 4);
        assert_eq!(t.num_channels(), 3);
        let n0: Vec<u32> = t.neighbors(PeId(0)).iter().map(|n| n.pe.0).collect();
        assert_eq!(n0, vec![1, 3]);
        assert!(t.is_neighbor(PeId(1), PeId(3)));
        assert!(!t.is_neighbor(PeId(2), PeId(3)));
    }

    #[test]
    fn lowest_channel_wins_for_shared_pairs() {
        // PEs 0 and 1 share both channel 0 (the link) and channel 2 (the bus).
        let t = tiny();
        assert_eq!(t.channel_between(PeId(0), PeId(1)), Some(ChannelId(0)));
        assert_eq!(t.channel_between(PeId(1), PeId(3)), Some(ChannelId(2)));
        assert_eq!(t.channel_between(PeId(0), PeId(2)), None);
    }

    #[test]
    fn distances_and_diameter() {
        let t = tiny();
        assert_eq!(t.distance(PeId(0), PeId(0)), 0);
        assert_eq!(t.distance(PeId(0), PeId(2)), 2);
        assert_eq!(t.distance(PeId(3), PeId(2)), 2);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn next_hop_routes_along_shortest_paths() {
        let t = tiny();
        assert_eq!(t.next_hop(PeId(3), PeId(2)), PeId(1));
        assert_eq!(t.next_hop(PeId(0), PeId(2)), PeId(1));
        assert_eq!(t.next_hop(PeId(2), PeId(3)), PeId(1));
        assert_eq!(t.next_hop(PeId(1), PeId(1)), PeId(1));
    }

    #[test]
    fn invariants_hold() {
        tiny().check_invariants();
    }

    #[test]
    fn lazy_router_matches_dense_on_arbitrary_graph() {
        let dense = tiny();
        let lazy = tiny().force_lazy_router();
        for a in dense.pes() {
            for b in dense.pes() {
                assert_eq!(dense.distance(a, b), lazy.distance(a, b), "{a}->{b}");
                assert_eq!(dense.next_hop(a, b), lazy.next_hop(a, b), "{a}->{b}");
            }
        }
        lazy.check_invariants();
    }

    #[test]
    fn mean_distance_of_two_node_graph() {
        let t = Topology::from_channels("pair", 2, vec![vec![PeId(0), PeId(1)]]);
        assert_eq!(t.mean_distance(), 1.0);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn duplicate_members_are_deduped() {
        let t = Topology::from_channels("dup", 2, vec![vec![PeId(0), PeId(1), PeId(1), PeId(0)]]);
        assert_eq!(t.degree(PeId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_graph_panics() {
        Topology::from_channels(
            "split",
            4,
            vec![vec![PeId(0), PeId(1)], vec![PeId(2), PeId(3)]],
        );
    }

    #[test]
    #[should_panic(expected = "fewer than two")]
    fn degenerate_channel_panics() {
        Topology::from_channels(
            "loop",
            2,
            vec![vec![PeId(0), PeId(0)], vec![PeId(0), PeId(1)]],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_member_panics() {
        Topology::from_channels("oob", 2, vec![vec![PeId(0), PeId(5)]]);
    }

    #[test]
    fn dot_export_contains_links_and_buses() {
        let t = tiny();
        let dot = t.to_dot();
        assert!(dot.starts_with("graph \"tiny\""));
        assert!(dot.contains("p0 -- p1;"), "{dot}");
        assert!(dot.contains("b2 [shape=box"), "{dot}");
        assert!(dot.contains("b2 -- p3;"), "{dot}");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    #[should_panic(expected = "no PEs")]
    fn empty_topology_panics() {
        Topology::from_channels("none", 0, vec![]);
    }

    // ------------------------------------------------------------------
    // Edge-list loader.
    // ------------------------------------------------------------------

    fn load(text: &str) -> Result<Topology, SpecError> {
        Topology::from_edge_list("test", std::io::Cursor::new(text))
    }

    #[test]
    fn edge_list_loads_with_comments_and_blanks() {
        let t = load("# a triangle\npes 3\n\n0 1\n1 2 # closing\n2 0\n").unwrap();
        assert_eq!(t.num_pes(), 3);
        assert_eq!(t.num_channels(), 3);
        assert_eq!(t.diameter(), 1);
        t.check_invariants();
    }

    #[test]
    fn edge_list_rejects_self_loop() {
        let err = load("pes 3\n0 1\n1 1\n2 0\n").unwrap_err();
        assert!(err.0.contains("self-loop"), "{err}");
        assert!(err.0.contains("line 3"), "{err}");
        assert!(err.0.contains("grammar"), "{err}");
    }

    #[test]
    fn edge_list_rejects_duplicate_edge_either_orientation() {
        let err = load("pes 3\n0 1\n1 2\n1 0\n").unwrap_err();
        assert!(err.0.contains("duplicate edge"), "{err}");
        assert!(err.0.contains("line 4"), "{err}");
    }

    #[test]
    fn edge_list_rejects_oversized_ids_via_try_from() {
        // An id beyond u32 must fail the checked conversion loudly, not
        // wrap — the regression the unchecked `as u32` casts allowed.
        let err = load("pes 4294967296\n0 1\n").unwrap_err();
        assert!(err.0.contains("exceeds u32"), "{err}");
        let err = load("pes 3\n0 99999999999\n").unwrap_err();
        assert!(err.0.contains("exceeds u32"), "{err}");
    }

    #[test]
    fn edge_list_rejects_missing_header_and_bad_lines() {
        assert!(load("0 1\n").unwrap_err().0.contains("before 'pes N'"));
        assert!(load("pes 3\n0\n").unwrap_err().0.contains("malformed"));
        assert!(load("pes 3\n0 1 2\n")
            .unwrap_err()
            .0
            .contains("too many fields"));
        assert!(load("").unwrap_err().0.contains("missing 'pes N'"));
        assert!(load("pes 3\n0 9\n").unwrap_err().0.contains("out of range"));
    }

    // ------------------------------------------------------------------
    // Random graphs.
    // ------------------------------------------------------------------

    #[test]
    fn random_graph_is_connected_and_deterministic() {
        let a = random_regular(40, 4, 7);
        let b = random_regular(40, 4, 7);
        a.check_invariants();
        assert_eq!(a.num_channels(), b.num_channels());
        assert_eq!(a.num_pes(), 40);
        // Ring + chords: strictly more channels than the bare ring.
        assert!(a.num_channels() > 40, "{}", a.num_channels());
        for pe in a.pes() {
            assert_eq!(
                a.channel_between(pe, b.neighbors(pe)[0].pe).is_some(),
                b.channel_between(pe, a.neighbors(pe)[0].pe).is_some()
            );
        }
    }
}
