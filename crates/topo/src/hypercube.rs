//! Binary hypercubes (the paper's Appendix I topology).

use crate::graph::{PeId, Topology};

/// Build a binary hypercube of the given dimension (`2^dim` PEs; PEs whose
/// ids differ in exactly one bit are linked).
///
/// # Panics
///
/// Panics if `dim == 0` (a single PE has no channels) or `dim > 16`.
pub fn hypercube(dim: u32) -> Topology {
    assert!((1..=16).contains(&dim), "hypercube dimension out of range");
    let n = 1usize << dim;
    let mut channels = Vec::with_capacity(n * dim as usize / 2);
    for i in 0..n {
        for b in 0..dim {
            let j = i ^ (1 << b);
            if i < j {
                channels.push(vec![PeId(i as u32), PeId(j as u32)]);
            }
        }
    }
    Topology::from_channels(format!("hypercube dim {dim}"), n, channels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_is_diameter_and_degree() {
        for dim in 1..=7 {
            let t = hypercube(dim);
            assert_eq!(t.num_pes(), 1 << dim);
            assert_eq!(t.diameter(), dim as u16);
            for pe in t.pes() {
                assert_eq!(t.degree(pe), dim as usize);
            }
        }
    }

    #[test]
    fn distance_is_hamming_distance() {
        let t = hypercube(5);
        for a in t.pes() {
            for b in t.pes() {
                assert_eq!(
                    t.distance(a, b) as u32,
                    (a.0 ^ b.0).count_ones(),
                    "distance({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn channel_count() {
        // d * 2^(d-1) links.
        assert_eq!(hypercube(6).num_channels(), 6 * 32);
    }

    #[test]
    fn invariants_hold() {
        hypercube(4).check_invariants();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_dimension_panics() {
        hypercube(0);
    }
}
