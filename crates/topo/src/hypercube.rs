//! Binary hypercubes (the paper's Appendix I topology).
//!
//! Distance is the Hamming distance of the PE ids, so hypercubes route
//! arithmetically with no stored table.

use crate::graph::{ArithmeticRouter, PeId, Topology};

/// Build a binary hypercube of the given dimension (`2^dim` PEs; PEs whose
/// ids differ in exactly one bit are linked).
///
/// # Panics
///
/// Panics if `dim == 0` (a single PE has no channels) or `dim > 24`
/// (16 Mi PEs — beyond that the link lists alone dwarf any simulation).
pub fn hypercube(dim: u32) -> Topology {
    assert!((1..=24).contains(&dim), "hypercube dimension out of range");
    let n = 1usize << dim;
    let mut channels = Vec::with_capacity(n * dim as usize / 2);
    for i in 0..n {
        for b in 0..dim {
            let j = i ^ (1 << b);
            if i < j {
                channels.push(vec![PeId(i as u32), PeId(j as u32)]);
            }
        }
    }
    Topology::with_arithmetic_router(
        format!("hypercube dim {dim}"),
        n,
        channels,
        ArithmeticRouter::Hypercube,
        dim,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_is_diameter_and_degree() {
        for dim in 1..=7 {
            let t = hypercube(dim);
            assert_eq!(t.num_pes(), 1 << dim);
            assert_eq!(t.diameter(), dim);
            for pe in t.pes() {
                assert_eq!(t.degree(pe), dim as usize);
            }
        }
    }

    #[test]
    fn distance_is_hamming_distance() {
        let t = hypercube(5);
        for a in t.pes() {
            for b in t.pes() {
                assert_eq!(
                    t.distance(a, b),
                    (a.0 ^ b.0).count_ones(),
                    "distance({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn channel_count() {
        // d * 2^(d-1) links.
        assert_eq!(hypercube(6).num_channels(), 6 * 32);
    }

    #[test]
    fn invariants_hold() {
        hypercube(4).check_invariants();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_dimension_panics() {
        hypercube(0);
    }

    /// Arithmetic routing must reproduce the dense BFS table exactly
    /// (distances, next hops, diameter, mean distance).
    #[test]
    fn arithmetic_router_matches_dense_bfs_tables() {
        for dim in [1, 3, 5] {
            let arith = hypercube(dim);
            let channels = (0..arith.num_channels())
                .map(|c| {
                    arith
                        .channel_members(crate::graph::ChannelId(c as u32))
                        .to_vec()
                })
                .collect();
            let dense =
                Topology::from_channels(arith.name().to_string(), arith.num_pes(), channels);
            for a in arith.pes() {
                for b in arith.pes() {
                    assert_eq!(arith.distance(a, b), dense.distance(a, b));
                    assert_eq!(
                        arith.next_hop(a, b),
                        dense.next_hop(a, b),
                        "{a}->{b} dim {dim}"
                    );
                }
            }
            assert_eq!(arith.diameter(), dense.diameter());
            assert!((arith.mean_distance() - dense.mean_distance()).abs() < 1e-9);
        }
    }
}
