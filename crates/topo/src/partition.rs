//! Cut-minimizing machine partitioning for the sharded parallel engine.
//!
//! The parallel engine splits the machine into K shards, one worker thread
//! each; every channel whose members span two shards costs cross-shard
//! mailbox traffic every time a message crosses it. Kurve et al.
//! (arXiv:1111.0875) frame partitioning for parallel simulation as exactly
//! this trade — balanced shard sizes against cut edges. This module is the
//! cheap deterministic corner of that idea: grow K connected regions by
//! breadth-first search from spread-out seed PEs, always assigning the next
//! PE to the smallest eligible shard and, within a shard's frontier,
//! preferring the PE with the most already-assigned neighbours in that
//! shard (fewest new cut edges). The result is deterministic for a given
//! topology and K — the parallel engine requires that, since shard
//! membership feeds the deterministic event-ordering key schedule.

use crate::graph::{ChannelId, PeId, Topology};

/// A partition of a topology's PEs into `num_shards` contiguous shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Shard index of every PE (length `num_pes`).
    pub shard_of: Vec<u32>,
    /// Number of shards actually used — the requested count clamped to
    /// the PE count, so every shard owns at least one PE. Callers sizing
    /// worker pools must use this, not the count they asked for.
    pub num_shards: u32,
    /// Channels whose members span more than one shard.
    pub cut_channels: Vec<ChannelId>,
}

impl Partition {
    /// Shard owning `pe`.
    #[inline]
    pub fn shard(&self, pe: PeId) -> u32 {
        self.shard_of[pe.idx()]
    }

    /// Number of channels crossing shard boundaries.
    pub fn cut_size(&self) -> usize {
        self.cut_channels.len()
    }
}

/// Partition `topo` into `num_shards` balanced, connected (when the
/// topology is connected) shards with a greedy BFS growth that scores
/// candidate PEs by how many cut edges they would avoid.
///
/// Deterministic: ties break toward the lowest PE id at every step.
///
/// `num_shards` above the PE count is clamped so that no shard is empty;
/// [`Partition::num_shards`] reports the effective count.
///
/// # Panics
///
/// Panics if `num_shards == 0`.
pub fn partition(topo: &Topology, num_shards: usize) -> Partition {
    assert!(num_shards > 0, "cannot partition into zero shards");
    let n = topo.num_pes();
    let k = num_shards.min(n.max(1));
    const UNASSIGNED: u32 = u32::MAX;
    let mut shard_of = vec![UNASSIGNED; n];

    // Seed each shard with a PE far from the already chosen seeds: the
    // first seed is PE 0, each later seed maximizes (in hop distance) the
    // minimum distance to existing seeds. On a grid this spreads seeds into
    // a rough lattice, which is what keeps the BFS regions compact.
    let mut seeds: Vec<PeId> = Vec::with_capacity(k);
    seeds.push(PeId(0));
    while seeds.len() < k {
        let mut best = None;
        for pe in topo.pes() {
            if seeds.contains(&pe) {
                continue;
            }
            let d = seeds
                .iter()
                .map(|&s| topo.distance(s, pe))
                .min()
                .unwrap_or(u32::MAX);
            let better = match best {
                None => true,
                Some((bd, _)) => d > bd,
            };
            if better {
                best = Some((d, pe));
            }
        }
        match best {
            Some((_, pe)) => seeds.push(pe),
            None => break,
        }
    }

    let mut sizes = vec![0usize; k];
    // Per-shard BFS frontier: PEs adjacent to the shard, not yet assigned.
    let mut frontiers: Vec<Vec<PeId>> = vec![Vec::new(); k];
    for (s, &seed) in seeds.iter().enumerate() {
        shard_of[seed.idx()] = s as u32;
        sizes[s] += 1;
        for nb in topo.neighbors(seed) {
            frontiers[s].push(nb.pe);
        }
    }

    let mut assigned = seeds.len();
    let cap = n.div_ceil(k);
    while assigned < n {
        // The smallest shard with a non-empty frontier grows next, and
        // shards at the size cap only grow when every under-cap shard is
        // landlocked — together these keep sizes near n/k.
        let mut grow: Option<usize> = None;
        for s in 0..k {
            frontiers[s].retain(|pe| shard_of[pe.idx()] == UNASSIGNED);
            if frontiers[s].is_empty() {
                continue;
            }
            let better = match grow {
                None => true,
                Some(g) => {
                    let (s_capped, g_capped) = (sizes[s] >= cap, sizes[g] >= cap);
                    (!s_capped && g_capped) || (s_capped == g_capped && sizes[s] < sizes[g])
                }
            };
            if better {
                grow = Some(s);
            }
        }
        let (s, pick) = match grow {
            Some(s) => {
                // Among the frontier, prefer the PE with the most
                // neighbours already inside shard `s` (each such neighbour
                // is an edge that will *not* be cut); lowest id on ties.
                let mut best: Option<(usize, PeId)> = None;
                for &pe in &frontiers[s] {
                    let inside = topo
                        .neighbors(pe)
                        .iter()
                        .filter(|nb| shard_of[nb.pe.idx()] == s as u32)
                        .count();
                    let better = match best {
                        None => true,
                        Some((bi, bpe)) => inside > bi || (inside == bi && pe.0 < bpe.0),
                    };
                    if better {
                        best = Some((inside, pe));
                    }
                }
                (s, best.expect("non-empty frontier").1)
            }
            None => {
                // Disconnected topology: every frontier is dry but PEs
                // remain. Drop the leftover into the smallest shard.
                let pe = topo
                    .pes()
                    .find(|pe| shard_of[pe.idx()] == UNASSIGNED)
                    .expect("assigned < n");
                let s = (0..k).min_by_key(|&s| (sizes[s], s)).expect("k > 0");
                (s, pe)
            }
        };
        shard_of[pick.idx()] = s as u32;
        sizes[s] += 1;
        assigned += 1;
        for nb in topo.neighbors(pick) {
            if shard_of[nb.pe.idx()] == UNASSIGNED {
                frontiers[s].push(nb.pe);
            }
        }
    }

    // Refinement (the iterative-improvement half of Kurve's scheme): walk
    // boundary PEs from oversized shards into adjacent smaller shards, but
    // only when the donor stays connected. The greedy growth above can
    // landlock a shard (its whole frontier claimed by neighbours before it
    // reached size n/k); this pass drains the surplus back.
    let mut moved = true;
    let mut guard = 4 * n * k;
    while moved && guard > 0 {
        moved = false;
        for pe in topo.pes() {
            guard = guard.saturating_sub(1);
            let from = shard_of[pe.idx()] as usize;
            if sizes[from] <= cap {
                continue;
            }
            // Smallest strictly-smaller adjacent shard.
            let mut target: Option<usize> = None;
            for nb in topo.neighbors(pe) {
                let t = shard_of[nb.pe.idx()] as usize;
                if t == from || sizes[t] + 1 >= sizes[from] {
                    continue;
                }
                let better = match target {
                    None => true,
                    Some(bt) => (sizes[t], t) < (sizes[bt], bt),
                };
                if better {
                    target = Some(t);
                }
            }
            let Some(t) = target else { continue };
            if !stays_connected(topo, &shard_of, pe, from as u32) {
                continue;
            }
            shard_of[pe.idx()] = t as u32;
            sizes[from] -= 1;
            sizes[t] += 1;
            moved = true;
        }
    }

    let cut_channels = (0..topo.num_channels())
        .map(|c| ChannelId(c as u32))
        .filter(|&c| {
            let members = topo.channel_members(c);
            members
                .iter()
                .any(|m| shard_of[m.idx()] != shard_of[members[0].idx()])
        })
        .collect();

    Partition {
        shard_of,
        num_shards: k as u32,
        cut_channels,
    }
}

/// True if shard `s` remains connected after removing `pe` from it.
fn stays_connected(topo: &Topology, shard_of: &[u32], pe: PeId, s: u32) -> bool {
    let members: Vec<PeId> = topo
        .pes()
        .filter(|p| *p != pe && shard_of[p.idx()] == s)
        .collect();
    let Some(&start) = members.first() else {
        return false; // never empty a shard
    };
    let mut seen = vec![false; topo.num_pes()];
    seen[start.idx()] = true;
    let mut stack = vec![start];
    let mut reached = 0usize;
    while let Some(p) = stack.pop() {
        reached += 1;
        for nb in topo.neighbors(p) {
            let q = nb.pe;
            if q != pe && shard_of[q.idx()] == s && !seen[q.idx()] {
                seen[q.idx()] = true;
                stack.push(q);
            }
        }
    }
    reached == members.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::mesh2d;
    use crate::misc::{complete, ring};

    fn check_basic(p: &Partition, n: usize, k: usize) {
        assert_eq!(p.shard_of.len(), n);
        assert!(p.shard_of.iter().all(|&s| (s as usize) < k));
        // Every shard non-empty when k <= n.
        if k <= n {
            for s in 0..k {
                assert!(
                    p.shard_of.iter().any(|&x| x as usize == s),
                    "shard {s} empty"
                );
            }
        }
    }

    #[test]
    fn grid_partition_is_balanced_and_cheap() {
        let topo = mesh2d(8, 8, false);
        for k in [1usize, 2, 3, 4, 8] {
            let p = partition(&topo, k);
            check_basic(&p, 64, k);
            let mut sizes = vec![0usize; k];
            for &s in &p.shard_of {
                sizes[s as usize] += 1;
            }
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(
                max - min <= 1 + 64 / (4 * k),
                "k={k}: imbalanced shard sizes {sizes:?}"
            );
            // A random 64-PE assignment cuts ~ (1 - 1/k) of 112 edges; the
            // BFS partition must do far better than that.
            if k > 1 {
                let random_cut = topo.num_channels() * (k - 1) / k;
                assert!(
                    p.cut_size() < random_cut / 2,
                    "k={k}: cut {} not better than half of random {random_cut}",
                    p.cut_size()
                );
            } else {
                assert_eq!(p.cut_size(), 0);
            }
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let topo = mesh2d(6, 5, false);
        let a = partition(&topo, 4);
        let b = partition(&topo, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn shards_are_connected_on_grid() {
        let topo = mesh2d(10, 10, false);
        let p = partition(&topo, 8);
        for s in 0..8u32 {
            let members: Vec<PeId> = topo.pes().filter(|pe| p.shard(*pe) == s).collect();
            assert!(!members.is_empty());
            // BFS within the shard from its first member must reach all.
            let mut seen = vec![false; topo.num_pes()];
            let mut stack = vec![members[0]];
            seen[members[0].idx()] = true;
            let mut count = 0;
            while let Some(pe) = stack.pop() {
                count += 1;
                for nb in topo.neighbors(pe) {
                    if p.shard(nb.pe) == s && !seen[nb.pe.idx()] {
                        seen[nb.pe.idx()] = true;
                        stack.push(nb.pe);
                    }
                }
            }
            assert_eq!(count, members.len(), "shard {s} is disconnected");
        }
    }

    #[test]
    fn more_shards_than_pes() {
        let topo = ring(3);
        let p = partition(&topo, 8);
        assert_eq!(p.shard_of.len(), 3);
        assert!(p.shard_of.iter().all(|&s| s < 3));
        // The reported count is the effective one: a caller spawning one
        // worker per shard must not spawn workers that own nothing.
        assert_eq!(p.num_shards, 3);
        check_basic(&p, 3, 3);
    }

    #[test]
    fn single_shard_cuts_nothing() {
        let topo = complete(6);
        let p = partition(&topo, 1);
        assert!(p.shard_of.iter().all(|&s| s == 0));
        assert_eq!(p.cut_size(), 0);
    }
}
