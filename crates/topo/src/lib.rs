//! # oracle-topo — interconnection topologies
//!
//! The paper compares load-distribution strategies on three interconnection
//! schemes: the 2-D nearest-neighbour grid, the double-lattice-mesh (DLM, a
//! bus-based topology from Kale's "Optimal Communication Neighborhoods",
//! ICPP 1986), and — in the appendix — hypercubes. This crate builds those
//! (plus rings, complete graphs, and stars used for testing and ablations)
//! behind a single concrete [`Topology`] type.
//!
//! A topology is a set of *channels*; a channel is either a point-to-point
//! link (two members) or a bus (more than two members). Two PEs are
//! *neighbours* iff they share a channel. Every topology carries precomputed
//! all-pairs shortest-path distances and deterministic next-hop routing
//! tables, which the machine model uses to route response messages.

pub mod dlm;
pub mod graph;
pub mod hypercube;
pub mod kary;
pub mod mesh;
pub mod misc;
pub mod partition;
pub mod spec;

pub use graph::{ChannelId, Neighbor, PeId, Topology};
pub use partition::{partition, Partition};
pub use spec::TopologySpec;
