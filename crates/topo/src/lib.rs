//! # oracle-topo — interconnection topologies
//!
//! The paper compares load-distribution strategies on three interconnection
//! schemes: the 2-D nearest-neighbour grid, the double-lattice-mesh (DLM, a
//! bus-based topology from Kale's "Optimal Communication Neighborhoods",
//! ICPP 1986), and — in the appendix — hypercubes. This crate builds those
//! (plus rings, complete graphs, and stars used for testing and ablations)
//! behind a single concrete [`Topology`] type.
//!
//! A topology is a set of *channels*; a channel is either a point-to-point
//! link (two members) or a bus (more than two members). Two PEs are
//! *neighbours* iff they share a channel. Every topology answers
//! shortest-path distance and deterministic next-hop queries: the regular
//! families (grid/torus/hypercube/k-ary) arithmetically with no stored
//! table, small arbitrary graphs from a precomputed all-pairs table, and
//! large arbitrary graphs (edge-list files, `rand:NxD`) through a lazy
//! BFS-on-demand router — so memory stays O(PEs + links) at every scale.

pub mod dlm;
pub mod graph;
pub mod hypercube;
pub mod kary;
pub mod mesh;
pub mod misc;
pub mod partition;
pub mod spec;

pub use graph::{random_regular, ChannelId, Neighbor, PeId, SpecError, Topology};
pub use partition::{partition, Partition};
pub use spec::TopologySpec;
