//! A small-vector type for hot-path fan-out.
//!
//! Task splits in the simulated programs fan out to 2–4 children almost
//! always (binary divide-and-conquer, fib, tak). [`InlineVec`] keeps up to
//! `N` elements inline — no heap allocation — and spills transparently to a
//! `Vec` for the rare wider fan-out (cyclic phases, random trees), so the
//! steady-state event loop never touches the allocator for child lists.
//!
//! The API is the small slice-building subset the simulator needs: build
//! (push / collect / from array), read (`Deref<Target = [T]>`), and consume
//! by value. Elements are `Copy + Default`, which keeps the implementation
//! entirely safe — there is no `MaybeUninit` in this type.

/// A vector of `T` that stores up to `N` elements inline.
///
/// ```
/// use oracle_des::InlineVec;
///
/// let v: InlineVec<u32, 4> = [1, 2, 3].into();
/// assert_eq!(v.len(), 3);
/// assert_eq!(&v[..], &[1, 2, 3]);
///
/// // Wider than N spills to the heap, transparently.
/// let wide: InlineVec<u32, 4> = (0..10).collect();
/// assert_eq!(wide.len(), 10);
/// ```
#[derive(Clone)]
pub struct InlineVec<T, const N: usize> {
    /// Total element count. `len <= N` means the elements live in `inline`;
    /// `len > N` means all of them live in `spill`.
    len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no allocation).
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [T::default(); N],
            spill: Vec::new(),
        }
    }

    /// Append an element, spilling to the heap past `N`.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = value;
        } else {
            if self.len == N {
                self.spill.reserve(N + 1);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(value);
        }
        self.len += 1;
    }
}

impl<T, const N: usize> InlineVec<T, N> {
    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.len <= N {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default, const N: usize, const M: usize> From<[T; M]> for InlineVec<T, N> {
    fn from(items: [T; M]) -> Self {
        let mut v = Self::new();
        for item in items {
            v.push(item);
        }
        v
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(items: Vec<T>) -> Self {
        if items.len() > N {
            // Reuse the existing heap buffer rather than copying it.
            InlineVec {
                len: items.len(),
                inline: [T::default(); N],
                spill: items,
            }
        } else {
            let mut v = Self::new();
            for item in items {
                v.push(item);
            }
            v
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

/// By-value iterator over an [`InlineVec`].
pub struct IntoIter<T, const N: usize> {
    vec: InlineVec<T, N>,
    pos: usize,
}

impl<T: Copy, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    #[inline]
    fn next(&mut self) -> Option<T> {
        let item = *self.vec.as_slice().get(self.pos)?;
        self.pos += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.vec.len() - self.pos;
        (rest, Some(rest))
    }
}

impl<T: Copy, const N: usize> ExactSizeIterator for IntoIter<T, N> {}

impl<T: Copy, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter { vec: self, pos: 0 }
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> std::slice::Iter<'a, T> {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert_eq!(&v[..], &[0, 1, 2, 3]);
        assert!(v.spill.is_empty(), "must not have touched the heap");
    }

    #[test]
    fn spills_past_capacity() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.len(), 5);
        assert_eq!(&v[..], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn from_array_and_vec() {
        let a: InlineVec<u8, 4> = [9, 8].into();
        assert_eq!(&a[..], &[9, 8]);
        let b: InlineVec<u8, 4> = vec![1, 2, 3, 4, 5, 6].into();
        assert_eq!(&b[..], &[1, 2, 3, 4, 5, 6]);
        let c: InlineVec<u8, 4> = vec![1].into();
        assert_eq!(&c[..], &[1]);
    }

    #[test]
    fn collects_and_iterates_by_value() {
        let v: InlineVec<u64, 4> = (0..7).collect();
        let out: Vec<u64> = v.clone().into_iter().collect();
        assert_eq!(out, (0..7).collect::<Vec<_>>());
        let refs: Vec<u64> = (&v).into_iter().copied().collect();
        assert_eq!(refs, out);
        assert_eq!(v.into_iter().len(), 7);
    }

    #[test]
    fn equality_ignores_unused_inline_slots() {
        let mut a: InlineVec<u32, 4> = InlineVec::new();
        a.push(1);
        a.push(99);
        let mut b: InlineVec<u32, 4> = [1, 99, 7].into();
        assert_ne!(a, b);
        a.push(7);
        assert_eq!(a, b);
        b.push(0);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_formats_like_a_slice() {
        let v: InlineVec<u32, 4> = [1, 2].into();
        assert_eq!(format!("{v:?}"), "[1, 2]");
    }
}
