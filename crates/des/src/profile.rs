//! Lightweight run profiler and metrics registry.
//!
//! The engine-side half of the observability layer: a small, fixed-cost
//! registry of named event kinds, each accumulating a count and wall-clock
//! time, plus a queue-depth high-water mark and a set of small-integer
//! tag counters (the model uses those for per-strategy control-message
//! tags). The driver decides when to sample [`std::time::Instant`]; the
//! registry itself never reads the clock, so a disabled profiler costs the
//! simulation exactly one branch per event.
//!
//! Wall-clock numbers are inherently nondeterministic; everything pinned by
//! golden or determinism tests must therefore run with profiling off (the
//! default). Counts and high-water marks, by contrast, are functions of the
//! simulated run alone and are reproducible.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Handle to one registered event kind (an index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindId(pub usize);

/// Accumulated count and wall time for one event kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindStats {
    /// Events of this kind processed.
    pub count: u64,
    /// Total wall-clock time spent handling them, in nanoseconds.
    pub wall_nanos: u64,
}

/// The live registry. Create one per run; extract a [`ProfileReport`] at
/// the end with [`Profiler::report`].
#[derive(Debug, Clone)]
pub struct Profiler {
    names: Vec<&'static str>,
    stats: Vec<KindStats>,
    queue_depth_hwm: usize,
    tag_counts: Vec<u64>,
}

impl Profiler {
    /// An empty registry.
    pub fn new() -> Self {
        Profiler {
            names: Vec::new(),
            stats: Vec::new(),
            queue_depth_hwm: 0,
            tag_counts: Vec::new(),
        }
    }

    /// A registry with `names` pre-registered, in order; `KindId(i)` is
    /// `names[i]`.
    pub fn with_kinds(names: &[&'static str]) -> Self {
        Profiler {
            names: names.to_vec(),
            stats: vec![KindStats::default(); names.len()],
            queue_depth_hwm: 0,
            tag_counts: Vec::new(),
        }
    }

    /// Register one more kind and return its handle.
    pub fn register(&mut self, name: &'static str) -> KindId {
        self.names.push(name);
        self.stats.push(KindStats::default());
        KindId(self.names.len() - 1)
    }

    /// Charge one event of kind `id`, timed from `started`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not registered.
    #[inline]
    pub fn record(&mut self, id: KindId, started: Instant) {
        let s = &mut self.stats[id.0];
        s.count += 1;
        s.wall_nanos += started.elapsed().as_nanos() as u64;
    }

    /// Charge one event of kind `id` without timing it.
    #[inline]
    pub fn count_only(&mut self, id: KindId) {
        self.stats[id.0].count += 1;
    }

    /// Raise the queue-depth high-water mark to `depth` if it is higher.
    #[inline]
    pub fn note_queue_depth(&mut self, depth: usize) {
        if depth > self.queue_depth_hwm {
            self.queue_depth_hwm = depth;
        }
    }

    /// Bump the counter for small-integer tag `tag`.
    #[inline]
    pub fn bump_tag(&mut self, tag: u8) {
        let i = tag as usize;
        if i >= self.tag_counts.len() {
            self.tag_counts.resize(i + 1, 0);
        }
        self.tag_counts[i] += 1;
    }

    /// Snapshot the registry into a report.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            kinds: self
                .names
                .iter()
                .zip(&self.stats)
                .map(|(&name, &s)| KindProfile {
                    name: name.to_string(),
                    count: s.count,
                    wall_nanos: s.wall_nanos,
                })
                .collect(),
            queue_depth_hwm: self.queue_depth_hwm,
            control_by_tag: self
                .tag_counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(t, &c)| (t as u8, c))
                .collect(),
        }
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-kind slice of a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindProfile {
    /// Registered kind name.
    pub name: String,
    /// Events of this kind processed.
    pub count: u64,
    /// Total wall-clock handling time, in nanoseconds.
    pub wall_nanos: u64,
}

/// The end-of-run snapshot of a [`Profiler`], carried on the run report.
/// Counts and high-water marks are deterministic; `wall_nanos` is not.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// One entry per registered kind, in registration order.
    pub kinds: Vec<KindProfile>,
    /// Highest pending-event-queue depth observed.
    pub queue_depth_hwm: usize,
    /// `(tag, count)` for every tag that was bumped at least once.
    pub control_by_tag: Vec<(u8, u64)>,
}

impl ProfileReport {
    /// Total events across all kinds.
    pub fn total_events(&self) -> u64 {
        self.kinds.iter().map(|k| k.count).sum()
    }

    /// Total wall time across all kinds, in nanoseconds.
    pub fn total_wall_nanos(&self) -> u64 {
        self.kinds.iter().map(|k| k.wall_nanos).sum()
    }

    /// Fold `other` into this report: counts and times add (kinds matched
    /// by name, appending unknown ones), high-water marks take the max.
    /// This is the `batch` roll-up.
    pub fn merge(&mut self, other: &ProfileReport) {
        for ok in &other.kinds {
            match self.kinds.iter_mut().find(|k| k.name == ok.name) {
                Some(k) => {
                    k.count += ok.count;
                    k.wall_nanos += ok.wall_nanos;
                }
                None => self.kinds.push(ok.clone()),
            }
        }
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        for &(tag, c) in &other.control_by_tag {
            match self.control_by_tag.iter_mut().find(|(t, _)| *t == tag) {
                Some((_, mine)) => *mine += c,
                None => self.control_by_tag.push((tag, c)),
            }
        }
        self.control_by_tag.sort_by_key(|&(t, _)| t);
    }

    /// Render as an aligned text table (the `--profile` output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>10}",
            "event kind", "count", "wall ms", "ns/event"
        );
        for k in self.kinds.iter().filter(|k| k.count > 0) {
            let _ = writeln!(
                out,
                "{:<16} {:>12} {:>12.3} {:>10.0}",
                k.name,
                k.count,
                k.wall_nanos as f64 / 1e6,
                k.wall_nanos as f64 / k.count as f64
            );
        }
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12.3}",
            "total",
            self.total_events(),
            self.total_wall_nanos() as f64 / 1e6
        );
        let _ = writeln!(out, "queue depth high-water mark: {}", self.queue_depth_hwm);
        if !self.control_by_tag.is_empty() {
            let _ = write!(out, "control messages by tag:");
            for &(tag, c) in &self.control_by_tag {
                let _ = write!(out, " {tag}:{c}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_and_time() {
        let mut p = Profiler::with_kinds(&["a", "b"]);
        let t0 = Instant::now();
        p.record(KindId(0), t0);
        p.record(KindId(0), t0);
        p.count_only(KindId(1));
        let r = p.report();
        assert_eq!(r.kinds[0].count, 2);
        assert_eq!(r.kinds[1].count, 1);
        assert_eq!(r.kinds[1].wall_nanos, 0);
        assert_eq!(r.total_events(), 3);
    }

    #[test]
    fn register_appends() {
        let mut p = Profiler::new();
        let a = p.register("x");
        let b = p.register("y");
        assert_eq!(a, KindId(0));
        assert_eq!(b, KindId(1));
        p.count_only(b);
        assert_eq!(p.report().kinds[1].name, "y");
    }

    #[test]
    fn queue_depth_keeps_the_max() {
        let mut p = Profiler::new();
        p.note_queue_depth(3);
        p.note_queue_depth(1);
        p.note_queue_depth(7);
        assert_eq!(p.report().queue_depth_hwm, 7);
    }

    #[test]
    fn tags_collect_sparsely() {
        let mut p = Profiler::new();
        p.bump_tag(200);
        p.bump_tag(3);
        p.bump_tag(3);
        assert_eq!(p.report().control_by_tag, vec![(3, 2), (200, 1)]);
    }

    #[test]
    fn merge_sums_by_name_and_maxes_hwm() {
        let mut a = Profiler::with_kinds(&["x"]);
        a.count_only(KindId(0));
        a.note_queue_depth(5);
        a.bump_tag(1);
        let mut b = Profiler::with_kinds(&["x"]);
        b.count_only(KindId(0));
        b.count_only(KindId(0));
        b.note_queue_depth(9);
        b.bump_tag(1);
        b.bump_tag(2);
        let mut r = a.report();
        r.merge(&b.report());
        assert_eq!(r.kinds[0].count, 3);
        assert_eq!(r.queue_depth_hwm, 9);
        assert_eq!(r.control_by_tag, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn render_lists_active_kinds_only() {
        let mut p = Profiler::with_kinds(&["seen", "unseen"]);
        p.count_only(KindId(0));
        let text = p.report().render();
        assert!(text.contains("seen"));
        assert!(!text.contains("unseen"));
        assert!(text.contains("high-water mark"));
    }
}
