//! Deterministic pseudo-random numbers.
//!
//! A hand-rolled xoshiro256** generator (Blackman & Vigna), seeded through
//! SplitMix64. The simulator's reproducibility guarantees rest on this:
//! a run is a pure function of `(config, seed)`, so the generator must be
//! fully specified rather than borrowed from a crate whose algorithm may
//! change between versions. The statistical quality of xoshiro256** is far
//! beyond what a load-balancing simulation can detect.

/// SplitMix64 step — used to expand a 64-bit seed into generator state and
/// to derive independent substreams.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** PRNG.
///
/// ```
/// use oracle_des::Rng;
///
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator from a 64-bit seed. Any seed (including 0) is valid.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent substream (e.g. one per PE) without perturbing
    /// the parent's future output beyond a single draw.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// The raw generator state, for checkpointing. Restoring it with
    /// [`Rng::from_state`] resumes the exact output stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by [`Rng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below called with bound 0");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::seed_from_u64(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn known_xoshiro_reference_values() {
        // Reference: xoshiro256** initialised with state [1, 2, 3, 4]
        // produces 11520, 0, 1509978240 as its first outputs.
        let mut r = Rng { s: [1, 2, 3, 4] };
        assert_eq!(r.next_u64(), 11520);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1509978240);
    }

    #[test]
    fn below_stays_in_bounds_and_hits_all_values() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(99);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[r.below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed counts: {counts:?}");
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = Rng::seed_from_u64(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.range_inclusive(10, 13);
            assert!((10..=13).contains(&v));
            lo_seen |= v == 10;
            hi_seen |= v == 13;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from_u64(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn chance_probability_is_respected() {
        let mut r = Rng::seed_from_u64(12);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::seed_from_u64(8);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = Rng::seed_from_u64(21);
        assert_eq!(r.choose::<u8>(&[]), None);
        let items = [1, 2, 3];
        assert!(items.contains(r.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        assert_ne!(v, orig, "50-element shuffle left order unchanged");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle changed the multiset");
    }

    #[test]
    #[should_panic(expected = "bound 0")]
    fn below_zero_bound_panics() {
        Rng::seed_from_u64(0).below(0);
    }
}
