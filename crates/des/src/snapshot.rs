//! A minimal binary snapshot codec.
//!
//! Checkpoint/resume demands *bit-identical* state round-trips: the resumed
//! run must replay the exact event order and RNG stream of the original, so
//! the wire format is fixed-width little-endian integers with floats carried
//! as their IEEE-754 bit patterns — no text formatting, no locale, no
//! precision loss. [`SnapWriter`] appends fields to a byte buffer and
//! [`SnapReader`] consumes them in the same order; every composite structure
//! in the simulator serializes itself field-by-field through this pair, and
//! any length or tag that fails to decode surfaces as a [`SnapError`] rather
//! than corrupt state.

use std::fmt;

/// Decoding failure: the byte stream ended early or held an invalid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ran out at `offset` while `needed` more bytes were
    /// required.
    Eof { offset: usize, needed: usize },
    /// A decoded field held a value outside its domain (bad bool tag, bad
    /// enum discriminant, non-UTF-8 string bytes, ...).
    Invalid { what: &'static str, value: u64 },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof { offset, needed } => {
                write!(
                    f,
                    "snapshot truncated at byte {offset} (needed {needed} more)"
                )
            }
            SnapError::Invalid { what, value } => {
                write!(f, "invalid snapshot field {what}: {value}")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Appends fixed-width little-endian fields to a growable byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// An empty writer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        SnapWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64 as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Append a usize as a u64 (sizes are platform-independent on disk).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Consumes fields from a byte slice in the order they were written.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an f64 from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool (rejecting anything but 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapError::Invalid {
                what: "bool",
                value: v as u64,
            }),
        }
    }

    /// Read a usize (stored as u64; rejects values beyond the platform's
    /// usize and absurd lengths longer than the remaining buffer where used
    /// as a length prefix).
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Invalid {
            what: "usize",
            value: v,
        })
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError::Invalid {
                what: "byte-slice length",
                value: n as u64,
            });
        }
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw).map_err(|e| SnapError::Invalid {
            what: "utf-8 string",
            value: e.valid_up_to() as u64,
        })
    }

    /// Assert that every byte has been consumed (trailing garbage means the
    /// reader and writer disagree about the format).
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Invalid {
                what: "trailing bytes",
                value: self.remaining() as u64,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f64(std::f64::consts::PI);
        w.f64(f64::NEG_INFINITY);
        w.bool(true);
        w.bool(false);
        w.usize(12345);
        w.bytes(b"raw");
        w.str("text \u{1F980}");
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), std::f64::consts::PI.to_bits());
        assert_eq!(r.f64().unwrap(), f64::NEG_INFINITY);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.str().unwrap(), "text \u{1F980}");
        r.finish().unwrap();
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = SnapWriter::new();
        w.f64(weird);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn truncated_buffer_is_eof() {
        let mut w = SnapWriter::new();
        w.u64(9);
        let bytes = &w.into_bytes()[..5];
        let mut r = SnapReader::new(bytes);
        assert!(matches!(r.u64(), Err(SnapError::Eof { .. })));
    }

    #[test]
    fn bad_bool_is_invalid() {
        let mut r = SnapReader::new(&[2]);
        assert_eq!(
            r.bool(),
            Err(SnapError::Invalid {
                what: "bool",
                value: 2
            })
        );
    }

    #[test]
    fn oversized_length_prefix_is_invalid() {
        let mut w = SnapWriter::new();
        w.usize(1_000_000); // claims a megabyte that is not there
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.bytes(), Err(SnapError::Invalid { .. })));
    }

    #[test]
    fn trailing_bytes_rejected_by_finish() {
        let mut w = SnapWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn errors_display() {
        let e = SnapError::Eof {
            offset: 3,
            needed: 5,
        };
        assert!(e.to_string().contains("truncated"));
        let e = SnapError::Invalid {
            what: "bool",
            value: 9,
        };
        assert!(e.to_string().contains("bool"));
    }
}
