//! Statistics collectors.
//!
//! ORACLE "provides statistics on a variety of performance aspects such as
//! the overall average PE utilization, average utilization of individual
//! PEs, average and individual utilizations of communication channels, the
//! time to completion", plus a sampled per-interval utilization stream that
//! drove the paper's colour load monitor. These collectors reproduce that
//! apparatus:
//!
//! * [`OnlineStats`] — single-pass mean/variance/min/max (Welford).
//! * [`Histogram`] — integer-bucket histogram, used for the paper's Table 3
//!   (distribution of goal-message hop distances).
//! * [`LogHistogram`] — fixed-bucket log histogram for streaming percentile
//!   estimation (open-system sojourn times and time-weighted queue-length
//!   distributions).
//! * [`BusyTracker`] — accumulates the busy time of one resource (a PE or a
//!   channel) and yields its utilization over any horizon.
//! * [`IntervalSeries`] — splits busy time into fixed-width sampling
//!   intervals, yielding the utilization-vs-time series of Plots 11–16.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Single-pass mean / variance / extrema via Welford's algorithm.
///
/// ```
/// use oracle_des::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if nothing was recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The raw accumulator fields `(count, mean, m2, min, max)`, for
    /// checkpointing. `min`/`max` are the internal sentinels (±infinity)
    /// when empty, so the round-trip is exact even for an empty
    /// accumulator.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuild an accumulator from fields captured by
    /// [`OnlineStats::raw_parts`].
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        OnlineStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merge another accumulator into this one (parallel-sweep reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Integer-valued histogram with a configurable bucket count; values at or
/// beyond the last bucket are clamped into it (recorded separately as
/// `overflow`).
///
/// ```
/// use oracle_des::Histogram;
///
/// let mut h = Histogram::new(4);
/// h.record(0);
/// h.record(2);
/// h.record(2);
/// assert_eq!(h.bucket(2), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram for values `0..buckets`.
    pub fn new(buckets: usize) -> Self {
        Histogram {
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Record one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.total += 1;
        self.sum += value;
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Count in bucket `value` (0 for out-of-range buckets).
    pub fn bucket(&self, value: usize) -> u64 {
        self.buckets.get(value).copied().unwrap_or(0)
    }

    /// The per-bucket counts, excluding overflow.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations that fell past the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded (including overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all recorded values (overflow values contribute their true
    /// magnitude), or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest non-empty bucket index, ignoring overflow.
    pub fn max_nonzero_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// The raw fields `(buckets, overflow, total, sum)`, for checkpointing.
    pub fn raw_parts(&self) -> (&[u64], u64, u64, u64) {
        (&self.buckets, self.overflow, self.total, self.sum)
    }

    /// Rebuild a histogram from fields captured by
    /// [`Histogram::raw_parts`].
    pub fn from_raw_parts(buckets: Vec<u64>, overflow: u64, total: u64, sum: u64) -> Self {
        Histogram {
            buckets,
            overflow,
            total,
            sum,
        }
    }

    /// Merge another histogram (must have the same bucket count).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "merging histograms of different widths"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Streaming percentile estimator over `u64` values: a fixed-bucket log
/// histogram (HDR-style). Values below [`LogHistogram::LINEAR_BUCKETS`] get
/// one exact bucket each; larger values share 8 sub-buckets per power-of-two
/// octave, bounding the relative error of any reported quantile to 12.5%
/// while memory stays a fixed 496 buckets regardless of the value range.
///
/// Observations can carry an integer weight ([`LogHistogram::record_n`]),
/// which makes the same structure serve two duties in the open-system
/// measurement layer: per-request sojourn times (weight 1 each) and
/// time-weighted queue-length distributions (weight = time spent at that
/// length).
///
/// ```
/// use oracle_des::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=100 {
///     h.record(v);
/// }
/// assert_eq!(h.total(), 100);
/// assert_eq!(h.quantile(1.0), 100); // the max is tracked exactly
/// let p50 = h.quantile(0.5);
/// assert!((44..=50).contains(&p50), "p50 = {p50}");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    total: u64,
    /// Weighted sum of observed values (f64: sojourn sums can exceed u64).
    sum: f64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Values below this get one exact bucket each.
    pub const LINEAR_BUCKETS: u64 = 16;
    /// Sub-buckets per power-of-two octave above the linear range.
    const SUB: u64 = 8;
    /// Total bucket count: 16 linear + 8 per octave for octaves 4..=63.
    const NUM_BUCKETS: usize = 16 + 60 * 8;

    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; Self::NUM_BUCKETS],
            total: 0,
            sum: 0.0,
            max: 0,
        }
    }

    /// Bucket index of `value` (exact below the linear range, then the
    /// octave's top-3-bits sub-bucket).
    fn index(value: u64) -> usize {
        if value < Self::LINEAR_BUCKETS {
            value as usize
        } else {
            let octave = 63 - value.leading_zeros() as u64; // >= 4
            let sub = (value >> (octave - 3)) & (Self::SUB - 1);
            (Self::LINEAR_BUCKETS + (octave - 4) * Self::SUB + sub) as usize
        }
    }

    /// Smallest value that lands in bucket `idx` (the reported quantile
    /// representative).
    fn floor_of(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < Self::LINEAR_BUCKETS {
            idx
        } else {
            let octave = 4 + (idx - Self::LINEAR_BUCKETS) / Self::SUB;
            let sub = (idx - Self::LINEAR_BUCKETS) % Self::SUB;
            (Self::SUB + sub) << (octave - 3)
        }
    }

    /// Record one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `weight` observations of `value` (no-op at zero weight).
    pub fn record_n(&mut self, value: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.buckets[Self::index(value)] += weight;
        self.total += weight;
        self.sum += value as f64 * weight as f64;
        self.max = self.max.max(value);
    }

    /// Total weight recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest value observed (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Weighted mean of all observations, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`): the lower bound of the first
    /// bucket whose cumulative weight reaches `q * total`, except that a
    /// quantile landing in the top non-empty bucket reports the exact
    /// tracked maximum. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        let mut hit = 0usize;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                hit = i;
                break;
            }
        }
        if Self::index(self.max) == hit {
            self.max
        } else {
            Self::floor_of(hit)
        }
    }

    /// The raw fields `(buckets, total, sum, max)`, for checkpointing.
    pub fn raw_parts(&self) -> (&[u64], u64, f64, u64) {
        (&self.buckets, self.total, self.sum, self.max)
    }

    /// Rebuild a histogram from fields captured by
    /// [`LogHistogram::raw_parts`].
    ///
    /// # Panics
    ///
    /// Panics if `buckets` has the wrong length.
    pub fn from_raw_parts(buckets: Vec<u64>, total: u64, sum: f64, max: u64) -> Self {
        assert_eq!(
            buckets.len(),
            Self::NUM_BUCKETS,
            "log histogram bucket count mismatch"
        );
        LogHistogram {
            buckets,
            total,
            sum,
            max,
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Accumulates the busy time of a single resource.
///
/// The resource is either idle or busy; `set_busy`/`set_idle` mark the
/// transitions. Utilization over `[0, horizon)` is `busy / horizon`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BusyTracker {
    busy_since: Option<SimTime>,
    accumulated: u64,
}

impl Default for BusyTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl BusyTracker {
    /// A tracker that starts idle at time zero.
    pub fn new() -> Self {
        BusyTracker {
            busy_since: None,
            accumulated: 0,
        }
    }

    /// Mark the resource busy from `now`. Idempotent while already busy.
    pub fn set_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Mark the resource idle at `now`, accumulating the elapsed busy span.
    pub fn set_idle(&mut self, now: SimTime) {
        if let Some(start) = self.busy_since.take() {
            self.accumulated += now - start;
        }
    }

    /// True if currently marked busy.
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Total busy units up to `now` (counting a still-open busy span).
    pub fn busy_time(&self, now: SimTime) -> u64 {
        self.accumulated + self.busy_since.map_or(0, |s| now - s)
    }

    /// The raw fields `(busy_since, accumulated)`, for checkpointing.
    pub fn raw_parts(&self) -> (Option<SimTime>, u64) {
        (self.busy_since, self.accumulated)
    }

    /// Rebuild a tracker from fields captured by
    /// [`BusyTracker::raw_parts`].
    pub fn from_raw_parts(busy_since: Option<SimTime>, accumulated: u64) -> Self {
        BusyTracker {
            busy_since,
            accumulated,
        }
    }

    /// Fraction of `[0, now)` the resource was busy, in `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.busy_time(now) as f64 / now.units() as f64
        }
    }
}

/// Splits busy time into fixed-width sampling intervals.
///
/// This reproduces ORACLE's "specially formatted output … the utilization of
/// each PE is output at every sampling interval" that drove the red/blue load
/// monitor, and yields the Y-series of the utilization-vs-time plots.
///
/// Memory is bounded: the series holds at most [`IntervalSeries::MAX_INTERVALS`]
/// intervals. When a run outlives that horizon, the sampling width doubles and
/// adjacent intervals are merged pairwise (an exact downsampling — busy units
/// are conserved), so an arbitrarily long simulation costs O(1) memory per
/// tracked resource instead of growing linearly with simulated time. Runs that
/// fit within the capacity — every paper-scale configuration does, by orders
/// of magnitude — produce bit-identical series to the unbounded version.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntervalSeries {
    width: u64,
    /// Busy units accumulated per interval.
    busy: Vec<u64>,
}

impl IntervalSeries {
    /// Maximum number of intervals held before the width doubles.
    pub const MAX_INTERVALS: usize = 8192;

    /// A series with sampling intervals of `width` time units.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "sampling interval must be positive");
        IntervalSeries {
            width,
            busy: Vec::new(),
        }
    }

    /// Sampling interval width in time units (doubles when a run outgrows
    /// [`Self::MAX_INTERVALS`]).
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Fold another series into this one by per-interval addition.
    ///
    /// Both series must sample the same underlying clock. If their widths
    /// differ (one of them outgrew [`Self::MAX_INTERVALS`] and coarsened),
    /// the finer series is coarsened to the common width first — coarsening
    /// is exact pairwise addition, so the merged buckets equal what a single
    /// series fed every `add_busy` span from both sources would hold,
    /// regardless of the order the spans arrived in.
    pub fn merge(&mut self, other: &IntervalSeries) {
        let mut other = other.clone();
        while self.width < other.width {
            self.coarsen();
        }
        while other.width < self.width {
            other.coarsen();
        }
        if self.busy.len() < other.busy.len() {
            self.busy.resize(other.busy.len(), 0);
        }
        for (dst, src) in self.busy.iter_mut().zip(other.busy.iter()) {
            *dst += *src;
        }
    }

    /// Record that the resource was busy over `[from, to)`, splitting the
    /// span across interval boundaries.
    pub fn add_busy(&mut self, from: SimTime, to: SimTime) {
        if to.units() <= from.units() {
            return;
        }
        while (to.units() - 1) / self.width >= Self::MAX_INTERVALS as u64 {
            self.coarsen();
        }
        let last = (to.units() - 1) / self.width;
        if self.busy.len() <= last as usize {
            self.busy.resize(last as usize + 1, 0);
        }
        let mut cur = from.units();
        while cur < to.units() {
            let idx = cur / self.width;
            let end = ((idx + 1) * self.width).min(to.units());
            self.busy[idx as usize] += end - cur;
            cur = end;
        }
    }

    /// Double the interval width, merging adjacent intervals pairwise.
    fn coarsen(&mut self) {
        let merged = self.busy.len().div_ceil(2);
        for i in 0..merged {
            self.busy[i] = self.busy[2 * i] + self.busy.get(2 * i + 1).copied().unwrap_or(0);
        }
        self.busy.truncate(merged);
        self.width *= 2;
    }

    /// Per-interval utilization fractions over `[0, horizon)`.
    ///
    /// The final (possibly partial) interval is normalized by its actual
    /// length so a run that ends mid-interval does not look artificially
    /// idle.
    pub fn utilization_series(&self, horizon: SimTime) -> Vec<(u64, f64)> {
        let h = horizon.units();
        if h == 0 {
            return Vec::new();
        }
        let n = h.div_ceil(self.width);
        (0..n)
            .map(|i| {
                let start = i * self.width;
                let len = (h - start).min(self.width);
                let busy = self.busy.get(i as usize).copied().unwrap_or(0);
                (start, busy as f64 / len as f64)
            })
            .collect()
    }

    /// Sum of all recorded busy units.
    pub fn total_busy(&self) -> u64 {
        self.busy.iter().sum()
    }

    /// The raw fields `(width, busy)`, for checkpointing. The width matters:
    /// a series that already coarsened must resume at its doubled width to
    /// stay bit-identical with an uninterrupted run.
    pub fn raw_parts(&self) -> (u64, &[u64]) {
        (self.width, &self.busy)
    }

    /// Rebuild a series from fields captured by
    /// [`IntervalSeries::raw_parts`].
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn from_raw_parts(width: u64, busy: Vec<u64>) -> Self {
        assert!(width > 0, "sampling interval must be positive");
        IntervalSeries { width, busy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.record(x));

        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..37].iter().for_each(|&x| a.record(x));
        xs[37..].iter().for_each(|&x| b.record(x));
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn online_stats_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.record(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 3.0);
    }

    #[test]
    fn histogram_records_and_overflows() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 1, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(2), 0);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
        assert!((h.mean() - 14.0 / 5.0).abs() < 1e-12);
        assert_eq!(h.max_nonzero_bucket(), Some(3));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new(3);
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_nonzero_bucket(), None);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(3);
        let mut b = Histogram::new(3);
        a.record(0);
        b.record(0);
        b.record(2);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.bucket(0), 2);
        assert_eq!(a.bucket(2), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn histogram_merge_width_mismatch_panics() {
        Histogram::new(2).merge(&Histogram::new(3));
    }

    #[test]
    fn log_histogram_exact_below_linear_range() {
        let mut h = LogHistogram::new();
        for v in 0..16 {
            h.record(v);
        }
        // Every value below the linear range is its own bucket, so every
        // quantile is exact.
        assert_eq!(h.quantile(1.0 / 16.0), 0);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.total(), 16);
        assert!((h.mean() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        for v in [100u64, 1_000, 10_000, 1_000_000, u64::MAX / 2] {
            h.record(v);
            let q = h.quantile(1.0);
            assert_eq!(q, h.max(), "top quantile must be the exact max");
        }
        // A mid quantile lands on a bucket floor within 12.5% below the
        // true value.
        let mut h = LogHistogram::new();
        for _ in 0..100 {
            h.record(1000);
        }
        let p50 = h.quantile(0.5);
        assert!(p50 <= 1000 && p50 as f64 >= 1000.0 * 0.875, "p50 = {p50}");
    }

    #[test]
    fn log_histogram_weighted_and_empty() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);

        let mut h = LogHistogram::new();
        h.record_n(0, 95); // e.g. 95 time units at queue length 0
        h.record_n(10, 5); // 5 units at length 10
        h.record_n(3, 0); // zero weight: ignored
        assert_eq!(h.total(), 100);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 10);
        assert!((h.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_round_trips_raw_parts() {
        let mut h = LogHistogram::new();
        for v in [0, 5, 17, 900, 123_456_789] {
            h.record(v);
        }
        let (buckets, total, sum, max) = h.raw_parts();
        let back = LogHistogram::from_raw_parts(buckets.to_vec(), total, sum, max);
        assert_eq!(back.total(), h.total());
        assert_eq!(back.max(), h.max());
        for q in [0.1, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(back.quantile(q), h.quantile(q));
        }
    }

    #[test]
    fn log_histogram_merge_matches_sequential() {
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..200u64 {
            let v = i * i * 37 % 100_000;
            whole.record(v);
            if i < 80 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.total(), whole.total());
        assert_eq!(a.max(), whole.max());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn busy_tracker_accumulates_spans() {
        let mut t = BusyTracker::new();
        assert!(!t.is_busy());
        t.set_busy(SimTime(10));
        assert!(t.is_busy());
        t.set_idle(SimTime(15));
        t.set_busy(SimTime(20));
        t.set_idle(SimTime(30));
        assert_eq!(t.busy_time(SimTime(30)), 15);
        assert!((t.utilization(SimTime(30)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn busy_tracker_open_span_counts() {
        let mut t = BusyTracker::new();
        t.set_busy(SimTime(0));
        assert_eq!(t.busy_time(SimTime(40)), 40);
        assert!((t.utilization(SimTime(40)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn busy_tracker_redundant_transitions_are_idempotent() {
        let mut t = BusyTracker::new();
        t.set_idle(SimTime(5)); // idle -> idle: no-op
        t.set_busy(SimTime(10));
        t.set_busy(SimTime(12)); // busy -> busy: keeps original start
        t.set_idle(SimTime(20));
        assert_eq!(t.busy_time(SimTime(20)), 10);
    }

    #[test]
    fn busy_tracker_at_time_zero() {
        let t = BusyTracker::new();
        assert_eq!(t.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn interval_series_splits_across_boundaries() {
        let mut s = IntervalSeries::new(10);
        s.add_busy(SimTime(5), SimTime(25)); // 5 in [0,10), 10 in [10,20), 5 in [20,30)
        let series = s.utilization_series(SimTime(30));
        assert_eq!(series.len(), 3);
        assert!((series[0].1 - 0.5).abs() < 1e-12);
        assert!((series[1].1 - 1.0).abs() < 1e-12);
        assert!((series[2].1 - 0.5).abs() < 1e-12);
        assert_eq!(s.total_busy(), 20);
    }

    #[test]
    fn interval_series_partial_final_interval_normalized() {
        let mut s = IntervalSeries::new(10);
        s.add_busy(SimTime(20), SimTime(25));
        // Horizon 25: final interval is [20,25), 5 units long, fully busy.
        let series = s.utilization_series(SimTime(25));
        assert_eq!(series.len(), 3);
        assert!((series[2].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interval_series_empty_and_degenerate_spans() {
        let mut s = IntervalSeries::new(10);
        s.add_busy(SimTime(5), SimTime(5)); // zero-length: ignored
        assert_eq!(s.total_busy(), 0);
        assert!(s.utilization_series(SimTime::ZERO).is_empty());
    }

    #[test]
    fn interval_series_exact_boundary_span() {
        let mut s = IntervalSeries::new(10);
        s.add_busy(SimTime(10), SimTime(20));
        let series = s.utilization_series(SimTime(20));
        assert!((series[0].1 - 0.0).abs() < 1e-12);
        assert!((series[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn interval_series_zero_width_panics() {
        IntervalSeries::new(0);
    }

    #[test]
    fn interval_series_memory_is_bounded() {
        let mut s = IntervalSeries::new(1);
        // Busy for one unit out of every ten, far past the capacity.
        let horizon = 40 * IntervalSeries::MAX_INTERVALS as u64;
        let mut t = 0;
        while t < horizon {
            s.add_busy(SimTime(t), SimTime(t + 1));
            t += 10;
        }
        assert!(s.busy.len() <= IntervalSeries::MAX_INTERVALS);
        assert!(s.width() >= 4, "width must have doubled, got {}", s.width());
        // Downsampling is exact: every busy unit is conserved.
        assert_eq!(s.total_busy(), horizon / 10);
        let series = s.utilization_series(SimTime(horizon));
        assert!(series.len() <= IntervalSeries::MAX_INTERVALS);
        for (_, u) in series {
            // One busy unit per ten: each coarse interval holds floor/ceil
            // of width/10 busy units, so utilization stays near 10%.
            assert!(
                (u - 0.1).abs() < 0.05,
                "uniform load must stay uniform, got {u}"
            );
        }
    }

    #[test]
    fn interval_series_under_capacity_is_untouched() {
        // A run that fits within MAX_INTERVALS must behave exactly like the
        // unbounded version: original width, one slot per interval.
        let mut s = IntervalSeries::new(10);
        s.add_busy(SimTime(5), SimTime(95));
        assert_eq!(s.width(), 10);
        assert_eq!(s.busy.len(), 10);
        assert_eq!(s.total_busy(), 90);
    }
}
