//! The event calendar.
//!
//! A binary-heap priority queue of `(time, key, payload)` entries.
//! Simultaneous events fire in ascending *key* order. Callers that do not
//! care about cross-actor tie ordering use [`EventQueue::schedule_at`], which
//! hands out strictly increasing keys (so same-instant ties fire FIFO);
//! callers that need a *stable* tie order — one that survives re-partitioning
//! the event set across shards — assign their own keys with
//! [`EventQueue::schedule_keyed_at`]. Either way every simulation run is a
//! pure function of its configuration and seed — the property the
//! reproduction's determinism tests rely on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled entry. Ordered by time, then by key.
#[derive(Clone)]
struct Scheduled<E> {
    at: SimTime,
    key: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.key).cmp(&(other.at, other.key))
    }
}

/// A deterministic discrete-event calendar.
///
/// ```
/// use oracle_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(10, "b");
/// q.schedule_after(5, "a");
/// q.schedule_after(10, "c"); // same instant as "b", scheduled later
///
/// assert_eq!(q.pop(), Some((SimTime(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// An empty calendar with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at the absolute instant `at` with an explicit
    /// ordering key. Same-instant events fire in ascending key order; a
    /// queue must never hold two pending events with equal `(at, key)`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past — scheduling backwards in time
    /// is always a modelling bug.
    pub fn schedule_keyed_at(&mut self, at: SimTime, key: u64, payload: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} but the clock is already at {}",
            self.now
        );
        self.heap.push(Reverse(Scheduled { at, key, payload }));
    }

    /// Schedule `payload` at the absolute instant `at` with an
    /// automatically assigned, strictly increasing key (same-instant ties
    /// fire in insertion order). Do not mix with explicit keys below
    /// `1 << 63` — auto keys start at zero.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        let key = self.seq;
        self.seq += 1;
        self.schedule_keyed_at(at, key, payload);
    }

    /// Schedule `payload` to fire `delay` units from now.
    #[inline]
    pub fn schedule_after(&mut self, delay: u64, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// `(time, key)` of the next pending event without removing it. The
    /// parallel engine's window reduction compares shard fronts with this.
    pub fn peek_keyed(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse(s)| (s.at, s.key))
    }

    /// Move the clock forward to `t` without popping anything, so events
    /// scheduled relative to `now` (and trace timestamps) use the shard
    /// window's time even on a shard with no event of its own at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past or would skip over a pending event.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "advance_to({t}) but the clock is at {}",
            self.now
        );
        debug_assert!(
            self.peek_time().is_none_or(|p| p >= t),
            "advance_to({t}) would skip a pending event"
        );
        self.now = t;
    }

    /// Remove and return the next event, advancing the clock to its
    /// timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(at, _, e)| (at, e))
    }

    /// Remove and return the next event together with its ordering key,
    /// advancing the clock to its timestamp.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event calendar went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.key, s.payload))
    }

    /// Rebuild a queue from checkpoint parts: the clock, the processed
    /// count, and every pending event in pop order with its recorded
    /// ordering key. Keys are preserved exactly, so the restored queue pops
    /// in the same order *and* keeps merging correctly with keyed events
    /// scheduled later; the auto-key counter resumes past the largest
    /// restored key.
    pub fn from_snapshot(now: SimTime, processed: u64, events: Vec<(SimTime, u64, E)>) -> Self {
        let mut q = EventQueue::with_capacity(events.len().max(16));
        for (at, key, payload) in events {
            q.schedule_keyed_at(at, key, payload);
            q.seq = q.seq.max(key.saturating_add(1));
        }
        q.now = now;
        q.processed = processed;
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), 3);
        q.schedule_at(SimTime(10), 1);
        q.schedule_at(SimTime(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_keys_override_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_keyed_at(SimTime(7), 30, "c");
        q.schedule_keyed_at(SimTime(7), 10, "a");
        q.schedule_keyed_at(SimTime(7), 20, "b");
        assert_eq!(q.pop_keyed(), Some((SimTime(7), 10, "a")));
        assert_eq!(q.pop_keyed(), Some((SimTime(7), 20, "b")));
        assert_eq!(q.pop_keyed(), Some((SimTime(7), 30, "c")));
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut q = EventQueue::new();
        q.schedule_after(15, ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(15));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_after(10, "first");
        q.pop();
        q.schedule_after(5, "second");
        assert_eq!(q.pop(), Some((SimTime(15), "second")));
    }

    #[test]
    #[should_panic(expected = "clock is already")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(9), ());
        assert_eq!(q.peek_time(), Some(SimTime(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counts_processed_events() {
        let mut q = EventQueue::new();
        q.schedule_after(1, ());
        q.schedule_after(2, ());
        q.pop();
        q.pop();
        assert_eq!(q.events_processed(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(5), 'a');
        q.schedule_at(SimTime(20), 'd');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.schedule_at(SimTime(10), 'b');
        q.schedule_at(SimTime(10), 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'd');
    }

    #[test]
    fn snapshot_preserves_keys() {
        let mut q = EventQueue::new();
        q.schedule_keyed_at(SimTime(4), 9, 'x');
        q.schedule_keyed_at(SimTime(4), 2, 'y');
        let q2 = EventQueue::from_snapshot(
            SimTime(1),
            3,
            vec![(SimTime(4), 2, 'y'), (SimTime(4), 9, 'x')],
        );
        let mut q2 = q2;
        // A key between the restored ones must still slot in between.
        q2.schedule_keyed_at(SimTime(4), 5, 'z');
        assert_eq!(q2.pop(), Some((SimTime(4), 'y')));
        assert_eq!(q2.pop(), Some((SimTime(4), 'z')));
        assert_eq!(q2.pop(), Some((SimTime(4), 'x')));
        assert_eq!(q2.events_processed(), 6);
        drop(q);
    }
}
