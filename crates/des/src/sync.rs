//! Synchronization primitives for the sharded parallel engine: a
//! lock-free single-producer/single-consumer mailbox and a low-latency
//! spinning barrier.
//!
//! The conservative-synchronization engine advances all shards through the
//! same bounded time window and exchanges cross-shard messages only at
//! window boundaries. That protocol gives both primitives here an unusually
//! friendly contract:
//!
//! * Each [`Mailbox`] is written by exactly one producer shard during a
//!   window's execution phase and drained by exactly one consumer shard
//!   during the following exchange phase; a barrier separates the two
//!   phases, so production and consumption of the *same* batch never
//!   overlap, and the ring only has to order individual push/pop pairs
//!   (acquire/release on the tail/head indices), never resolve contention.
//! * Windows are short (often a handful of events), so parking a thread in
//!   a kernel futex between windows would dominate the runtime. The
//!   [`SpinBarrier`] keeps waiters on `spin_loop` hints instead — at the
//!   window rates the engine produces, every waiter arrives within
//!   microseconds.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A bounded lock-free single-producer single-consumer ring buffer.
///
/// `push` may only ever be called from one thread at a time, and `pop` from
/// one thread at a time — the sharded engine upholds this by indexing its
/// mailbox matrix as `[producer][consumer]`, so each ring has exactly one
/// shard on each side. Capacity is fixed at
/// construction and rounded up to a power of two; `push` on a full ring
/// returns the rejected value so the caller can fall back (the engine sizes
/// rings generously and treats overflow as a hard error).
pub struct Mailbox<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to read. Only the consumer advances it.
    head: AtomicUsize,
    /// Next slot to write. Only the producer advances it.
    tail: AtomicUsize,
}

// SAFETY: the head/tail protocol guarantees a slot is never accessed by
// both sides at once — the producer writes a slot before releasing it via
// `tail`, the consumer acquires `tail` before reading and releases the slot
// back via `head`.
unsafe impl<T: Send> Send for Mailbox<T> {}
unsafe impl<T: Send> Sync for Mailbox<T> {}

impl<T> Mailbox<T> {
    /// A ring holding at least `capacity` in-flight items.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buf = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Mailbox {
            buf,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Append `value`, or give it back if the ring is full.
    ///
    /// Must only be called from the producer side.
    pub fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return Err(value);
        }
        // SAFETY: the slot at `tail` is vacant — the consumer has already
        // moved `head` past any previous occupant — and only this producer
        // writes slots.
        unsafe {
            (*self.buf[tail & self.mask].get()).write(value);
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Remove and return the oldest item, if any.
    ///
    /// Must only be called from the consumer side.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `tail` was acquired after the producer released this
        // slot's write, and only this consumer reads slots.
        let value = unsafe { (*self.buf[head & self.mask].get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// True when no items are in flight.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

/// A reusable spinning barrier for a fixed set of participant threads.
///
/// Arrivals increment a counter; the last arrival of a generation releases
/// everyone by bumping the generation word. Waiters spin with
/// [`std::hint::spin_loop`] — the engine synchronizes every simulated time
/// window, far too often for futex-based parking.
pub struct SpinBarrier {
    participants: u64,
    /// Low 32 bits: arrivals this generation. High 32 bits: generation.
    state: AtomicU64,
    /// Set by [`SpinBarrier::poison`]: a participant died (panic, fatal
    /// error) and will never arrive again. All current and future waiters
    /// return immediately instead of spinning forever.
    poisoned: AtomicU64,
}

impl SpinBarrier {
    /// A barrier for `participants` threads.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0 && participants < u32::MAX as usize);
        SpinBarrier {
            participants: participants as u64,
            state: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        }
    }

    /// Block (spinning) until all participants have arrived. Returns `true`
    /// on exactly one participant per generation (the last to arrive).
    ///
    /// On a poisoned barrier, returns `false` immediately (possibly before
    /// the generation completes) — callers must check
    /// [`SpinBarrier::is_poisoned`] after every wait and abandon the
    /// protocol when it fires.
    pub fn wait(&self) -> bool {
        if self.is_poisoned() {
            return false;
        }
        let prev = self.state.fetch_add(1, Ordering::AcqRel);
        let generation = prev >> 32;
        let arrived = (prev & 0xffff_ffff) + 1;
        if arrived == self.participants {
            // Last one in: start the next generation with zero arrivals.
            self.state.store((generation + 1) << 32, Ordering::Release);
            return true;
        }
        let mut spins = 0u32;
        while self.state.load(Ordering::Acquire) >> 32 == generation {
            if self.is_poisoned() {
                return false;
            }
            // Spin briefly for the common all-cores-busy case, then yield:
            // when shards outnumber cores, burning a scheduler quantum in
            // `spin_loop` starves the very thread being waited for.
            spins += 1;
            if spins < 1 << 7 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        false
    }

    /// Mark the barrier dead: a participant is gone for good. Every thread
    /// spinning in [`SpinBarrier::wait`] (now or later) returns instead of
    /// deadlocking on an arrival that will never come.
    pub fn poison(&self) {
        self.poisoned.store(1, Ordering::Release);
    }

    /// True once [`SpinBarrier::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn mailbox_fifo_single_thread() {
        let m = Mailbox::new(4);
        assert!(m.is_empty());
        for i in 0..4 {
            m.push(i).unwrap();
        }
        assert_eq!(m.push(99), Err(99), "ring of 4 holds 4");
        for i in 0..4 {
            assert_eq!(m.pop(), Some(i));
        }
        assert_eq!(m.pop(), None);
        // Wrap around several times.
        for round in 0..10 {
            m.push(round).unwrap();
            assert_eq!(m.pop(), Some(round));
        }
    }

    #[test]
    fn mailbox_cross_thread_alternating_phases() {
        // The engine's access pattern: producer fills, barrier, consumer
        // drains, barrier, repeat.
        let m = Arc::new(Mailbox::new(64));
        let b = Arc::new(SpinBarrier::new(2));
        let rounds = 200u64;
        let producer = {
            let m = Arc::clone(&m);
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                for r in 0..rounds {
                    for i in 0..50u64 {
                        m.push(r * 1000 + i).unwrap();
                    }
                    b.wait(); // batch published
                    b.wait(); // batch consumed
                }
            })
        };
        for r in 0..rounds {
            b.wait();
            for i in 0..50u64 {
                assert_eq!(m.pop(), Some(r * 1000 + i));
            }
            assert!(m.is_empty());
            b.wait();
        }
        producer.join().unwrap();
    }

    #[test]
    fn barrier_reusable_across_generations() {
        let n = 4;
        let b = Arc::new(SpinBarrier::new(n));
        let hits = Arc::new(AtomicU32::new(0));
        let leaders = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            let hits = Arc::clone(&hits);
            let leaders = Arc::clone(&leaders);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    hits.fetch_add(1, Ordering::Relaxed);
                    if b.wait() {
                        leaders.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 4000);
        assert_eq!(
            leaders.load(Ordering::Relaxed),
            1000,
            "one leader per generation"
        );
    }

    #[test]
    fn poisoned_barrier_releases_waiters() {
        let b = Arc::new(SpinBarrier::new(3));
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.wait())
        };
        // Two of three arrive; the third dies and poisons instead.
        assert!(!b.is_poisoned());
        let b2 = Arc::clone(&b);
        let killer = std::thread::spawn(move || {
            b2.poison();
        });
        killer.join().unwrap();
        // The spinning waiter must come back rather than hang.
        assert!(!waiter.join().unwrap());
        // Later arrivals return immediately too.
        assert!(!b.wait());
        assert!(b.is_poisoned());
    }

    #[test]
    fn mailbox_drop_releases_pending_items() {
        let m = Mailbox::new(8);
        for i in 0..5 {
            m.push(Box::new(i)).unwrap();
        }
        drop(m); // Drop impl drains; run under Miri/ASan this checks leaks.
    }
}
