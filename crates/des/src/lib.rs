//! # oracle-des — discrete-event simulation engine
//!
//! The substrate underneath the ORACLE multiprocessor simulator: a
//! deterministic event calendar, simulated time, a seedable PRNG, and the
//! statistics collectors the paper's measurement apparatus needs (online
//! mean/variance, histograms, busy-time trackers, and interval-sampled time
//! series for the utilization-vs-time plots).
//!
//! The original ORACLE was written in SIMSCRIPT, a process-oriented
//! discrete-event language. This crate provides the equivalent event-driven
//! core: client code models each simulated entity (a processing element, a
//! communication channel) as a state machine that schedules future events on
//! an [`EventQueue`].
//!
//! Everything here is deterministic: events that are scheduled for the same
//! instant fire in the order they were scheduled, and all randomness flows
//! from an explicitly seeded [`Rng`]. Two interchangeable event lists are
//! provided — the binary-heap [`EventQueue`] (the default) and the
//! bucket-based [`CalendarQueue`] (Brown 1988) — with identical ordering
//! semantics.

pub mod backend;
pub mod calendar;
pub mod event;
pub mod hash;
pub mod inline;
pub mod profile;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod sync;
pub mod time;

pub use backend::{DualQueue, QueueSnapshot};
pub use calendar::CalendarQueue;
pub use event::EventQueue;
pub use hash::{FastHashMap, FastHashSet, FastHasher};
pub use inline::InlineVec;
pub use profile::{KindId, KindProfile, ProfileReport, Profiler};
pub use rng::Rng;
pub use snapshot::{SnapError, SnapReader, SnapWriter};
pub use stats::{BusyTracker, Histogram, IntervalSeries, LogHistogram, OnlineStats};
pub use sync::{Mailbox, SpinBarrier};
pub use time::SimTime;
