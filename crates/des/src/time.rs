//! Simulated time.
//!
//! The paper charges abstract "units" for primitive operations (its runs
//! lasted 1000–23000 units). [`SimTime`] is a newtype over `u64` units so the
//! type system keeps simulated time separate from counters and wall-clock
//! durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant in simulated time, measured in abstract time units.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero, the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// The raw number of time units since the simulation started.
    #[inline]
    pub const fn units(self) -> u64 {
        self.0
    }

    /// Elapsed units since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs)
                .expect("simulated time overflowed u64"),
        )
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    /// Duration between two instants. Panics in debug builds if `rhs` is
    /// later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        debug_assert!(rhs.0 <= self.0, "negative simulated duration");
        self.0 - rhs.0
    }
}

impl From<u64> for SimTime {
    #[inline]
    fn from(units: u64) -> Self {
        SimTime(units)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_advances_time() {
        let t = SimTime::ZERO + 5;
        assert_eq!(t.units(), 5);
        assert_eq!((t + 7).units(), 12);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut t = SimTime(10);
        t += 32;
        assert_eq!(t, SimTime(10) + 32);
    }

    #[test]
    fn sub_gives_duration() {
        assert_eq!(SimTime(12) - SimTime(5), 7);
        assert_eq!(SimTime(5) - SimTime(5), 0);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(3).since(SimTime(10)), 0);
        assert_eq!(SimTime(10).since(SimTime(3)), 7);
    }

    #[test]
    fn ordering_is_by_units() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime(4).max(SimTime(9)), SimTime(9));
        assert_eq!(SimTime(4).min(SimTime(9)), SimTime(4));
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn overflow_panics() {
        let _ = SimTime::MAX + 1;
    }

    #[test]
    fn display_shows_units() {
        assert_eq!(SimTime(42).to_string(), "42u");
    }
}
