//! Runtime-selectable event-list backend.
//!
//! The simulator core works against [`DualQueue`], an enum over the two
//! interchangeable event lists — the binary-heap [`EventQueue`] and the
//! bucket-based [`CalendarQueue`]. Enum dispatch keeps the queue choice a
//! runtime configuration knob without infecting the public `Machine` /
//! `Strategy` API with a generic parameter, and the two variants share the
//! exact deterministic ordering contract (time, then insertion sequence), so
//! swapping backends never changes a simulated result — `tests/cross_queue.rs`
//! pins that on the full paper workloads.

use crate::calendar::CalendarQueue;
use crate::event::EventQueue;
use crate::time::SimTime;

/// An event list that is either a binary heap or a calendar queue.
///
/// ```
/// use oracle_des::{DualQueue, SimTime};
///
/// for mut q in [DualQueue::heap(), DualQueue::calendar()] {
///     q.schedule_after(10, "late");
///     q.schedule_after(5, "early");
///     assert_eq!(q.pop(), Some((SimTime(5), "early")));
///     assert_eq!(q.pop(), Some((SimTime(10), "late")));
/// }
/// ```
pub enum DualQueue<E> {
    /// Binary-heap event list ([`EventQueue`]) — the default.
    Heap(EventQueue<E>),
    /// Calendar-queue event list ([`CalendarQueue`], Brown 1988).
    Calendar(CalendarQueue<E>),
}

impl<E> DualQueue<E> {
    /// An empty binary-heap queue.
    pub fn heap() -> Self {
        DualQueue::Heap(EventQueue::new())
    }

    /// An empty binary-heap queue with pre-reserved capacity.
    pub fn heap_with_capacity(capacity: usize) -> Self {
        DualQueue::Heap(EventQueue::with_capacity(capacity))
    }

    /// An empty calendar queue.
    pub fn calendar() -> Self {
        DualQueue::Calendar(CalendarQueue::new())
    }

    /// Current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        match self {
            DualQueue::Heap(q) => q.now(),
            DualQueue::Calendar(q) => q.now(),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            DualQueue::Heap(q) => q.len(),
            DualQueue::Calendar(q) => q.len(),
        }
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match self {
            DualQueue::Heap(q) => q.is_empty(),
            DualQueue::Calendar(q) => q.is_empty(),
        }
    }

    /// Events popped so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        match self {
            DualQueue::Heap(q) => q.events_processed(),
            DualQueue::Calendar(q) => q.events_processed(),
        }
    }

    /// Schedule `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        match self {
            DualQueue::Heap(q) => q.schedule_at(at, payload),
            DualQueue::Calendar(q) => q.schedule_at(at, payload),
        }
    }

    /// Schedule `payload` to fire `delay` units from now.
    #[inline]
    pub fn schedule_after(&mut self, delay: u64, payload: E) {
        match self {
            DualQueue::Heap(q) => q.schedule_after(delay, payload),
            DualQueue::Calendar(q) => q.schedule_after(delay, payload),
        }
    }

    /// Remove and return the next event, advancing the clock.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            DualQueue::Heap(q) => q.pop(),
            DualQueue::Calendar(q) => q.pop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn backends_agree_on_random_schedules() {
        let mut rng = Rng::seed_from_u64(7);
        let mut heap = DualQueue::heap_with_capacity(64);
        let mut cal = DualQueue::calendar();
        for i in 0..64u64 {
            let d = rng.below(50);
            heap.schedule_after(d, i);
            cal.schedule_after(d, i);
        }
        for i in 0..5_000u64 {
            let a = heap.pop().expect("heap drained early");
            let b = cal.pop().expect("calendar drained early");
            assert_eq!(a, b, "diverged at step {i}");
            let d = rng.below(120);
            heap.schedule_after(d, i + 64);
            cal.schedule_after(d, i + 64);
        }
        while let Some(a) = heap.pop() {
            assert_eq!(Some(a), cal.pop());
        }
        assert!(cal.pop().is_none());
        assert_eq!(heap.events_processed(), cal.events_processed());
        assert_eq!(heap.now(), cal.now());
        assert!(heap.is_empty() && cal.is_empty());
        assert_eq!(heap.len(), 0);
    }
}
