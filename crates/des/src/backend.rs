//! Runtime-selectable event-list backend.
//!
//! The simulator core works against [`DualQueue`], an enum over the two
//! interchangeable event lists — the binary-heap [`EventQueue`] and the
//! bucket-based [`CalendarQueue`]. Enum dispatch keeps the queue choice a
//! runtime configuration knob without infecting the public `Machine` /
//! `Strategy` API with a generic parameter, and the two variants share the
//! exact deterministic ordering contract (time, then insertion sequence), so
//! swapping backends never changes a simulated result — `tests/cross_queue.rs`
//! pins that on the full paper workloads.

use crate::calendar::CalendarQueue;
use crate::event::EventQueue;
use crate::time::SimTime;

/// The portable state of an event list: the clock, the processed-event
/// count, and every pending event in pop order with its ordering key.
/// Because both backends order events identically (time, then key), this is
/// a complete and backend-agnostic description — a snapshot drained from a
/// heap can be restored into a calendar queue and vice versa without
/// changing a single future pop, and the preserved keys keep restored
/// events merging correctly with keyed events scheduled later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSnapshot<E> {
    /// Timestamp of the last popped event.
    pub now: SimTime,
    /// Events popped before the snapshot was taken.
    pub processed: u64,
    /// Every pending event with its ordering key, in exactly the order
    /// `pop` would return them.
    pub events: Vec<(SimTime, u64, E)>,
}

/// An event list that is either a binary heap or a calendar queue.
///
/// ```
/// use oracle_des::{DualQueue, SimTime};
///
/// for mut q in [DualQueue::heap(), DualQueue::calendar()] {
///     q.schedule_after(10, "late");
///     q.schedule_after(5, "early");
///     assert_eq!(q.pop(), Some((SimTime(5), "early")));
///     assert_eq!(q.pop(), Some((SimTime(10), "late")));
/// }
/// ```
#[derive(Clone)]
pub enum DualQueue<E> {
    /// Binary-heap event list ([`EventQueue`]) — the default.
    Heap(EventQueue<E>),
    /// Calendar-queue event list ([`CalendarQueue`], Brown 1988).
    Calendar(CalendarQueue<E>),
}

impl<E> DualQueue<E> {
    /// An empty binary-heap queue.
    pub fn heap() -> Self {
        DualQueue::Heap(EventQueue::new())
    }

    /// An empty binary-heap queue with pre-reserved capacity.
    pub fn heap_with_capacity(capacity: usize) -> Self {
        DualQueue::Heap(EventQueue::with_capacity(capacity))
    }

    /// An empty calendar queue.
    pub fn calendar() -> Self {
        DualQueue::Calendar(CalendarQueue::new())
    }

    /// Current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        match self {
            DualQueue::Heap(q) => q.now(),
            DualQueue::Calendar(q) => q.now(),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            DualQueue::Heap(q) => q.len(),
            DualQueue::Calendar(q) => q.len(),
        }
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match self {
            DualQueue::Heap(q) => q.is_empty(),
            DualQueue::Calendar(q) => q.is_empty(),
        }
    }

    /// Events popped so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        match self {
            DualQueue::Heap(q) => q.events_processed(),
            DualQueue::Calendar(q) => q.events_processed(),
        }
    }

    /// Schedule `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        match self {
            DualQueue::Heap(q) => q.schedule_at(at, payload),
            DualQueue::Calendar(q) => q.schedule_at(at, payload),
        }
    }

    /// Schedule `payload` to fire `delay` units from now.
    #[inline]
    pub fn schedule_after(&mut self, delay: u64, payload: E) {
        match self {
            DualQueue::Heap(q) => q.schedule_after(delay, payload),
            DualQueue::Calendar(q) => q.schedule_after(delay, payload),
        }
    }

    /// Schedule `payload` at the absolute instant `at` with an explicit
    /// ordering key (see [`EventQueue::schedule_keyed_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    #[inline]
    pub fn schedule_keyed_at(&mut self, at: SimTime, key: u64, payload: E) {
        match self {
            DualQueue::Heap(q) => q.schedule_keyed_at(at, key, payload),
            DualQueue::Calendar(q) => q.schedule_keyed_at(at, key, payload),
        }
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            DualQueue::Heap(q) => q.peek_time(),
            DualQueue::Calendar(q) => q.peek_time(),
        }
    }

    /// Remove and return the next event, advancing the clock.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            DualQueue::Heap(q) => q.pop(),
            DualQueue::Calendar(q) => q.pop(),
        }
    }

    /// Remove and return the next event together with its ordering key,
    /// advancing the clock.
    #[inline]
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        match self {
            DualQueue::Heap(q) => q.pop_keyed(),
            DualQueue::Calendar(q) => q.pop_keyed(),
        }
    }

    /// `(time, key)` of the next pending event without removing it.
    pub fn peek_keyed(&self) -> Option<(SimTime, u64)> {
        match self {
            DualQueue::Heap(q) => q.peek_keyed(),
            DualQueue::Calendar(q) => q.peek_keyed(),
        }
    }

    /// Move the clock forward to `t` without popping anything.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past or would skip over a pending event.
    pub fn advance_to(&mut self, t: SimTime) {
        match self {
            DualQueue::Heap(q) => q.advance_to(t),
            DualQueue::Calendar(q) => q.advance_to(t),
        }
    }

    /// Drain the queue into a [`QueueSnapshot`], leaving it empty. Popping
    /// is the only operation whose order both backends define identically,
    /// so draining *is* the canonical serialization; callers that need to
    /// keep running rebuild the queue with [`DualQueue::from_snapshot`].
    pub fn take_snapshot(&mut self) -> QueueSnapshot<E> {
        let now = self.now();
        let processed = self.events_processed();
        let mut events = Vec::with_capacity(self.len());
        while let Some(entry) = self.pop_keyed() {
            events.push(entry);
        }
        QueueSnapshot {
            now,
            processed,
            events,
        }
    }

    /// Rebuild a queue of the same backend kind as `self` from a snapshot.
    /// Used to restore a queue in place after [`DualQueue::take_snapshot`]
    /// drained it (the drain advances internal cursors that must not leak
    /// into the continuing run).
    pub fn restore_snapshot(&mut self, snap: QueueSnapshot<E>) {
        *self = match self {
            DualQueue::Heap(_) => DualQueue::Heap(EventQueue::from_snapshot(
                snap.now,
                snap.processed,
                snap.events,
            )),
            DualQueue::Calendar(_) => DualQueue::Calendar(CalendarQueue::from_snapshot(
                snap.now,
                snap.processed,
                snap.events,
            )),
        };
    }

    /// Build a queue from a snapshot, choosing the backend explicitly.
    pub fn from_snapshot(use_heap: bool, snap: QueueSnapshot<E>) -> Self {
        if use_heap {
            DualQueue::Heap(EventQueue::from_snapshot(
                snap.now,
                snap.processed,
                snap.events,
            ))
        } else {
            DualQueue::Calendar(CalendarQueue::from_snapshot(
                snap.now,
                snap.processed,
                snap.events,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn backends_agree_on_random_schedules() {
        let mut rng = Rng::seed_from_u64(7);
        let mut heap = DualQueue::heap_with_capacity(64);
        let mut cal = DualQueue::calendar();
        for i in 0..64u64 {
            let d = rng.below(50);
            heap.schedule_after(d, i);
            cal.schedule_after(d, i);
        }
        for i in 0..5_000u64 {
            let a = heap.pop().expect("heap drained early");
            let b = cal.pop().expect("calendar drained early");
            assert_eq!(a, b, "diverged at step {i}");
            let d = rng.below(120);
            heap.schedule_after(d, i + 64);
            cal.schedule_after(d, i + 64);
        }
        while let Some(a) = heap.pop() {
            assert_eq!(Some(a), cal.pop());
        }
        assert!(cal.pop().is_none());
        assert_eq!(heap.events_processed(), cal.events_processed());
        assert_eq!(heap.now(), cal.now());
        assert!(heap.is_empty() && cal.is_empty());
        assert_eq!(heap.len(), 0);
    }

    #[test]
    fn snapshot_round_trip_preserves_pop_order_across_backends() {
        // Build two identical schedules, snapshot one mid-run, restore the
        // snapshot into BOTH backend kinds, and check every later pop.
        let mut reference = DualQueue::<u64>::heap();
        let mut snap_source = DualQueue::<u64>::calendar();
        let mut rng = Rng::seed_from_u64(13);
        for i in 0..200u64 {
            // Delays up to 2000 exercise both the wheel and the overflow.
            let d = rng.below(2_000);
            reference.schedule_after(d, i);
            snap_source.schedule_after(d, i);
        }
        for _ in 0..60 {
            assert_eq!(reference.pop(), snap_source.pop());
        }
        let snap = snap_source.take_snapshot();
        assert!(snap_source.is_empty());
        let mut as_heap = DualQueue::from_snapshot(true, snap.clone());
        let mut as_cal = DualQueue::from_snapshot(false, snap.clone());
        snap_source.restore_snapshot(snap);
        assert_eq!(snap_source.now(), reference.now());
        assert_eq!(snap_source.events_processed(), reference.events_processed());
        loop {
            let want = reference.pop();
            assert_eq!(as_heap.pop(), want);
            assert_eq!(as_cal.pop(), want);
            assert_eq!(snap_source.pop(), want);
            if want.is_none() {
                break;
            }
        }
    }
}
