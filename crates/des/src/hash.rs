//! A fast deterministic hasher for the simulation's integer-keyed maps.
//!
//! The default `std` hasher (SipHash-1-3) is keyed per process and costs
//! tens of cycles per `u64` — measurable on the hot path, where every
//! response delivery looks up its waiting task by integer goal id. This is
//! the classic multiply-xor fold (the same construction as rustc's
//! FxHash): one rotate, one xor, one multiply per word, with a fixed seed
//! so runs are reproducible bit-for-bit.
//!
//! Determinism note: map *lookup* behaviour never depends on the hasher,
//! but *iteration order* does. Code iterating a [`FastHashMap`] must sort
//! before acting (exactly as it must with the std hasher, whose order is
//! random per process) — the simulator's only such loop sorts its ids.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply-xor hasher with a fixed seed.
#[derive(Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// [`std::collections::HashMap`] using [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// [`std::collections::HashSet`] using [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("goal"), hash_of("goal"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of((1u64, 2u64)), hash_of((2u64, 1u64)));
    }

    #[test]
    fn map_basic_operations() {
        let mut m: FastHashMap<u64, &str> = FastHashMap::default();
        for i in 0..1000 {
            m.insert(i, "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(m.remove(&0).is_some());
        assert!(!m.contains_key(&0));
    }

    #[test]
    fn unaligned_byte_tails_hash_consistently() {
        assert_eq!(hash_of([1u8, 2, 3]), hash_of([1u8, 2, 3]));
        assert_ne!(hash_of([1u8, 2, 3]), hash_of([1u8, 2, 4]));
    }
}
