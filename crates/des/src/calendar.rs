//! A calendar queue — the classic O(1) event list of discrete-event
//! simulation (R. Brown, CACM 1988: "Calendar queues: a fast O(1) priority
//! queue implementation for the simulation event set problem" — exactly
//! contemporary with the paper).
//!
//! Events are hashed into `buckets` of `width` time units each, wrapping
//! around like days on a wall calendar; a pop scans forward from the
//! current bucket and only considers events belonging to the current
//! "year". With bucket width tracking the mean event spacing, schedule and
//! pop are O(1) amortized, against O(log n) for the binary heap.
//!
//! [`CalendarQueue`] implements the same interface and — crucially — the
//! same *deterministic order* as [`crate::EventQueue`] (time, then
//! insertion sequence), so the two are interchangeable; a property test
//! checks order equality on random schedules, and `benches/engine.rs`
//! compares their throughput.

use crate::time::SimTime;

/// One scheduled entry.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

/// A self-resizing calendar queue with deterministic FIFO tie-breaking.
///
/// ```
/// use oracle_des::{CalendarQueue, SimTime};
///
/// let mut q = CalendarQueue::new();
/// q.schedule_after(10, "late");
/// q.schedule_after(5, "early");
/// assert_eq!(q.pop(), Some((SimTime(5), "early")));
/// assert_eq!(q.pop(), Some((SimTime(10), "late")));
/// ```
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Width of one bucket in time units.
    width: u64,
    now: SimTime,
    seq: u64,
    len: usize,
    processed: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty calendar with the clock at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..16).map(|_| Vec::new()).collect(),
            width: 16,
            now: SimTime::ZERO,
            seq: 0,
            len: 0,
            processed: 0,
        }
    }

    /// Current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events popped so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    #[inline]
    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.units() / self.width) % self.buckets.len() as u64) as usize
    }

    /// Schedule `payload` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} but the clock is already at {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let idx = self.bucket_of(at);
        self.buckets[idx].push(Entry { at, seq, payload });
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Schedule `payload` to fire `delay` units from now.
    #[inline]
    pub fn schedule_after(&mut self, delay: u64, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Remove and return the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        let year_span = self.width * n;
        let mut t = self.now.units();

        // Scan at most one full calendar year from the current time; each
        // bucket only yields events whose timestamp falls within its
        // current-year window.
        for _ in 0..n {
            let idx = ((t / self.width) % n) as usize;
            let window_start = t - (t % self.width);
            let window_end = window_start + self.width;
            if let Some(pos) = Self::min_in_window(&self.buckets[idx], window_start, window_end) {
                return Some(self.take(idx, pos));
            }
            t = window_end;
            let _ = year_span;
        }

        // Nothing within a year of `now`: jump to the global minimum.
        let (idx, pos) = self.global_min().expect("len > 0 but no event found");
        Some(self.take(idx, pos))
    }

    /// Position of the (time, seq)-minimal entry within `[start, end)`.
    fn min_in_window(bucket: &[Entry<E>], start: u64, end: u64) -> Option<usize> {
        let mut best: Option<(u64, u64, usize)> = None;
        for (i, e) in bucket.iter().enumerate() {
            let t = e.at.units();
            if t < start || t >= end {
                continue;
            }
            match best {
                Some((bt, bs, _)) if (bt, bs) <= (t, e.seq) => {}
                _ => best = Some((t, e.seq, i)),
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Position of the globally (time, seq)-minimal entry.
    fn global_min(&self) -> Option<(usize, usize)> {
        let mut best: Option<(u64, u64, usize, usize)> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                let key = (e.at.units(), e.seq);
                match best {
                    Some((bt, bs, _, _)) if (bt, bs) <= key => {}
                    _ => best = Some((key.0, key.1, bi, i)),
                }
            }
        }
        best.map(|(_, _, bi, i)| (bi, i))
    }

    fn take(&mut self, bucket: usize, pos: usize) -> (SimTime, E) {
        let entry = self.buckets[bucket].swap_remove(pos);
        debug_assert!(entry.at >= self.now, "calendar went backwards");
        self.now = entry.at;
        self.len -= 1;
        self.processed += 1;
        if self.buckets.len() > 16 && self.len < self.buckets.len() / 2 {
            self.resize(self.buckets.len() / 2);
        }
        (entry.at, entry.payload)
    }

    /// Rebuild with `new_count` buckets and a width tracking the mean
    /// spacing of pending events.
    fn resize(&mut self, new_count: usize) {
        let entries: Vec<Entry<E>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        // Estimate width: spread of pending timestamps over their count.
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for e in &entries {
            lo = lo.min(e.at.units());
            hi = hi.max(e.at.units());
        }
        let spread = hi.saturating_sub(lo);
        self.width =
            (spread / entries.len().max(1) as u64).clamp(1, u64::MAX / (2 * new_count as u64));
        self.buckets = (0..new_count).map(|_| Vec::new()).collect();
        for e in entries {
            let idx = self.bucket_of(e.at);
            self.buckets[idx].push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule_at(SimTime(30), 3);
        q.schedule_at(SimTime(10), 1);
        q.schedule_at(SimTime(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_jump_works() {
        let mut q = CalendarQueue::new();
        q.schedule_at(SimTime(1_000_000), "far");
        q.schedule_at(SimTime(5), "near");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.now(), SimTime(1_000_000));
        assert!(q.is_empty());
    }

    #[test]
    fn resize_preserves_everything() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u64 {
            q.schedule_at(SimTime(i * 17 % 4096), i);
        }
        assert_eq!(q.len(), 1000);
        let mut last = (SimTime::ZERO, 0u64);
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last.0);
            last = (t, 0);
            count += 1;
        }
        assert_eq!(count, 1000);
        assert_eq!(q.events_processed(), 1000);
    }

    #[test]
    fn matches_binary_heap_order_on_random_schedules() {
        // The decisive test: identical pop order to EventQueue under an
        // interleaved random hold pattern.
        let mut rng = Rng::seed_from_u64(99);
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        for i in 0..64u64 {
            let d = rng.below(100);
            cal.schedule_after(d, i);
            heap.schedule_after(d, i);
        }
        for i in 0..10_000u64 {
            let (tc, ec) = cal.pop().expect("calendar drained early");
            let (th, eh) = heap.pop().expect("heap drained early");
            assert_eq!((tc, ec), (th, eh), "diverged at step {i}");
            // Hold: reschedule a new event with a random delay.
            let d = rng.below(200);
            cal.schedule_after(d, i + 1000);
            heap.schedule_after(d, i + 1000);
        }
        // Drain both.
        loop {
            match (cal.pop(), heap.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(
                    a.as_ref().map(|(t, e)| (*t, *e)),
                    b.as_ref().map(|(t, e)| (*t, *e))
                ),
            }
        }
    }

    #[test]
    #[should_panic(expected = "clock is already")]
    fn scheduling_in_the_past_panics() {
        let mut q = CalendarQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::ZERO);
    }
}
