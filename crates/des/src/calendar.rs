//! A calendar queue — the classic O(1) event list of discrete-event
//! simulation (R. Brown, CACM 1988: "Calendar queues: a fast O(1) priority
//! queue implementation for the simulation event set problem" — exactly
//! contemporary with the paper).
//!
//! This implementation is the degenerate-but-fast corner of Brown's design
//! space, chosen for the ORACLE simulation's measured event density of tens
//! of events per time unit: a *unit-width* wheel of `WHEEL_SLOTS` buckets
//! covering the window `[window_start, window_start + WHEEL_SLOTS)`, plus a
//! binary-heap overflow for events beyond the window. With one timestamp
//! per bucket, a bucket holds only same-instant events, so `schedule` is a
//! bounds check and a push, and `pop` walks the clock forward to the next
//! non-empty bucket and extracts that bucket's minimum-*key* entry with a
//! short linked-list scan (buckets hold at most a few tens of entries at
//! the densities the simulator produces). When the wheel drains, the window
//! jumps straight to the earliest overflow timestamp and due overflow
//! events are decanted into the wheel in `(time, key)` order — there is no
//! full-calendar scan anywhere.
//!
//! [`CalendarQueue`] implements the same interface and — crucially — the
//! same *deterministic order* as [`crate::EventQueue`] (time, then ordering
//! key), so the two are interchangeable; property tests check order
//! equality on random, sparse, and interleaved schedules, and
//! `benches/engine.rs` compares their throughput.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Number of unit-width buckets on the wheel (one simulated-time unit
/// each). Power of two so the slot index is a mask. Events scheduled
/// further than this beyond the window start wait in the overflow heap.
const WHEEL_SLOTS: usize = 1024;
const MASK: u64 = WHEEL_SLOTS as u64 - 1;

/// Sentinel "no node" index into the wheel's node pool.
const NIL: u32 = u32::MAX;

/// A pooled wheel entry: the payload and its ordering key, plus the pool
/// index of the next entry in the same slot's list (or, for free nodes, the
/// next free node).
#[derive(Clone)]
struct Node<E> {
    payload: Option<E>,
    key: u64,
    next: u32,
}

/// An overflow entry. Ordered by time, then by ordering key — the same
/// deterministic order as [`crate::EventQueue`].
#[derive(Clone)]
struct Deferred<E> {
    at: u64,
    key: u64,
    payload: E,
}

impl<E> PartialEq for Deferred<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<E> Eq for Deferred<E> {}
impl<E> PartialOrd for Deferred<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Deferred<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.key).cmp(&(other.at, other.key))
    }
}

/// A two-tier timing-wheel calendar with deterministic keyed tie-breaking.
///
/// ```
/// use oracle_des::{CalendarQueue, SimTime};
///
/// let mut q = CalendarQueue::new();
/// q.schedule_after(10, "late");
/// q.schedule_after(5, "early");
/// assert_eq!(q.pop(), Some((SimTime(5), "early")));
/// assert_eq!(q.pop(), Some((SimTime(10), "late")));
/// ```
#[derive(Clone)]
pub struct CalendarQueue<E> {
    /// Shared node pool for every wheel slot. Each slot is a singly-linked
    /// list threaded through this arena (`head`/`tail` below), and freed
    /// nodes go on a free list — so the steady state allocates nothing, and
    /// the pool grows O(log peak-pending) times total instead of each of
    /// the 1024 slots growing its own buffer.
    pool: Vec<Node<E>>,
    /// Head of the free list through `pool` (`NIL` when exhausted).
    free: u32,
    /// `head[t & MASK]`/`tail[t & MASK]` delimit the list of every pending
    /// event at exactly time `t`, for `t` in `[window_start, window_start +
    /// WHEEL_SLOTS)`. One timestamp per slot — the window is exactly one
    /// wheel revolution. Pop extracts the minimum-key entry of a slot.
    head: Vec<u32>,
    tail: Vec<u32>,
    /// Start of the window the wheel currently covers. Only moves forward,
    /// and only when the wheel is empty (so nothing can be left behind).
    window_start: u64,
    /// Events at or beyond `window_start + WHEEL_SLOTS`.
    overflow: BinaryHeap<Reverse<Deferred<E>>>,
    /// Pending events currently on the wheel (as opposed to in overflow).
    wheel_len: usize,
    now: SimTime,
    seq: u64,
    len: usize,
    processed: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty calendar with the clock at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            pool: Vec::new(),
            free: NIL,
            head: vec![NIL; WHEEL_SLOTS],
            tail: vec![NIL; WHEEL_SLOTS],
            window_start: 0,
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            now: SimTime::ZERO,
            seq: 0,
            len: 0,
            processed: 0,
        }
    }

    /// Append `payload` to the slot covering time `t` (which must lie
    /// inside the current window).
    #[inline]
    fn wheel_push(&mut self, t: u64, key: u64, payload: E) {
        let idx = if self.free != NIL {
            let idx = self.free;
            let node = &mut self.pool[idx as usize];
            self.free = node.next;
            node.payload = Some(payload);
            node.key = key;
            node.next = NIL;
            idx
        } else {
            assert!(self.pool.len() < NIL as usize, "event pool overflow");
            self.pool.push(Node {
                payload: Some(payload),
                key,
                next: NIL,
            });
            (self.pool.len() - 1) as u32
        };
        let s = (t & MASK) as usize;
        if self.tail[s] == NIL {
            self.head[s] = idx;
        } else {
            self.pool[self.tail[s] as usize].next = idx;
        }
        self.tail[s] = idx;
        self.wheel_len += 1;
    }

    /// Detach and return the minimum-key entry of slot `s`, if any,
    /// recycling its node onto the free list. The scan is over same-instant
    /// events only (one timestamp per slot), which stays short at simulated
    /// event densities.
    #[inline]
    fn wheel_pop(&mut self, s: usize) -> Option<(u64, E)> {
        let first = self.head[s];
        if first == NIL {
            return None;
        }
        // Find the minimum-key node and its predecessor.
        let mut best = first;
        let mut best_prev = NIL;
        let mut prev = first;
        let mut cur = self.pool[first as usize].next;
        let mut best_key = self.pool[first as usize].key;
        while cur != NIL {
            let k = self.pool[cur as usize].key;
            if k < best_key {
                best_key = k;
                best = cur;
                best_prev = prev;
            }
            prev = cur;
            cur = self.pool[cur as usize].next;
        }
        let node = &mut self.pool[best as usize];
        let payload = node.payload.take().expect("linked node holds a payload");
        let after = node.next;
        node.next = self.free;
        self.free = best;
        if best_prev == NIL {
            self.head[s] = after;
        } else {
            self.pool[best_prev as usize].next = after;
        }
        if self.tail[s] == best {
            self.tail[s] = best_prev;
        }
        self.wheel_len -= 1;
        Some((best_key, payload))
    }

    /// Current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events popped so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `payload` at the absolute instant `at` with an explicit
    /// ordering key (see [`crate::EventQueue::schedule_keyed_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_keyed_at(&mut self, at: SimTime, key: u64, payload: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} but the clock is already at {}",
            self.now
        );
        let t = at.units();
        if t < self.window_start + WHEEL_SLOTS as u64 {
            self.wheel_push(t, key, payload);
        } else {
            self.overflow.push(Reverse(Deferred {
                at: t,
                key,
                payload,
            }));
        }
        self.len += 1;
    }

    /// Schedule `payload` at the absolute instant `at` with an
    /// automatically assigned, strictly increasing key (same-instant ties
    /// fire in insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        let key = self.seq;
        self.seq += 1;
        self.schedule_keyed_at(at, key, payload);
    }

    /// Schedule `payload` to fire `delay` units from now.
    #[inline]
    pub fn schedule_after(&mut self, delay: u64, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Timestamp of the next pending event, if any. O(window occupancy) in
    /// the worst case but O(1) amortized on the densities the simulator
    /// produces (the scan resumes from `now`).
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            return self.overflow.peek().map(|Reverse(d)| SimTime(d.at));
        }
        let mut t = self.now.units().max(self.window_start);
        loop {
            if self.head[(t & MASK) as usize] != NIL {
                return Some(SimTime(t));
            }
            t += 1;
            debug_assert!(
                t < self.window_start + WHEEL_SLOTS as u64,
                "wheel_len > 0 but no occupied slot in the window"
            );
        }
    }

    /// `(time, key)` of the next pending event without removing it: the
    /// same walk as [`CalendarQueue::peek_time`], plus a min-key scan of
    /// the found slot. Non-destructive — the wheel window does not move
    /// (the window jump lives in `pop_keyed` only).
    pub fn peek_keyed(&self) -> Option<(SimTime, u64)> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            return self
                .overflow
                .peek()
                .map(|Reverse(d)| (SimTime(d.at), d.key));
        }
        let mut t = self.now.units().max(self.window_start);
        loop {
            let mut cur = self.head[(t & MASK) as usize];
            if cur != NIL {
                let mut best = self.pool[cur as usize].key;
                cur = self.pool[cur as usize].next;
                while cur != NIL {
                    best = best.min(self.pool[cur as usize].key);
                    cur = self.pool[cur as usize].next;
                }
                return Some((SimTime(t), best));
            }
            t += 1;
            debug_assert!(
                t < self.window_start + WHEEL_SLOTS as u64,
                "wheel_len > 0 but no occupied slot in the window"
            );
        }
    }

    /// Move the clock forward to `t` without popping anything (see
    /// [`crate::EventQueue::advance_to`]). Events scheduled afterwards may
    /// land in the overflow heap even when near `t` — the first pop
    /// re-centers the wheel window, so this costs a decant, not
    /// correctness.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past or would skip over a pending event.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "advance_to({t}) but the clock is at {}",
            self.now
        );
        debug_assert!(
            self.peek_time().is_none_or(|p| p >= t),
            "advance_to({t}) would skip a pending event"
        );
        self.now = t;
    }

    /// Remove and return the next event, advancing the clock.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(at, _, e)| (at, e))
    }

    /// Remove and return the next event together with its ordering key,
    /// advancing the clock.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            // Everything pending is in overflow: jump the window to the
            // earliest deferred timestamp and decant what now fits. The
            // drain order is (time, key); pop re-derives the slot minimum
            // anyway, so the decant order is not load-bearing.
            let at = match self.overflow.peek() {
                Some(Reverse(d)) => d.at,
                None => unreachable!("len > 0 with empty wheel and overflow"),
            };
            self.window_start = at;
            let end = at + WHEEL_SLOTS as u64;
            while let Some(Reverse(d)) = self.overflow.peek() {
                if d.at >= end {
                    break;
                }
                let Reverse(d) = self.overflow.pop().expect("peeked");
                self.wheel_push(d.at, d.key, d.payload);
            }
        }
        // Walk the clock forward to the next occupied slot. Every wheel
        // event is at >= now (past events are gone) and within the window,
        // so this finds the (time, key)-minimum pending event: overflow
        // events are all at or beyond the window's end.
        let mut t = self.now.units().max(self.window_start);
        loop {
            if let Some((key, payload)) = self.wheel_pop((t & MASK) as usize) {
                let at = SimTime(t);
                self.now = at;
                self.len -= 1;
                self.processed += 1;
                return Some((at, key, payload));
            }
            t += 1;
            debug_assert!(
                t < self.window_start + WHEEL_SLOTS as u64,
                "wheel_len > 0 but no occupied slot in the window"
            );
        }
    }

    /// Rebuild a queue from checkpoint parts: the clock, the processed
    /// count, and every pending event in pop order with its recorded
    /// ordering key. The wheel window starts back at zero — every pending
    /// event is at or after `now`, so the window-jump logic in
    /// [`CalendarQueue::pop`] recovers the working position on the first
    /// pop. Keys are preserved exactly; the auto-key counter resumes past
    /// the largest restored key.
    pub fn from_snapshot(now: SimTime, processed: u64, events: Vec<(SimTime, u64, E)>) -> Self {
        let mut q = CalendarQueue::new();
        for (at, key, payload) in events {
            q.schedule_keyed_at(at, key, payload);
            q.seq = q.seq.max(key.saturating_add(1));
        }
        q.now = now;
        q.processed = processed;
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule_at(SimTime(30), 3);
        q.schedule_at(SimTime(10), 1);
        q.schedule_at(SimTime(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_keys_override_insertion_order() {
        let mut q = CalendarQueue::new();
        q.schedule_keyed_at(SimTime(7), 30, "c");
        q.schedule_keyed_at(SimTime(7), 10, "a");
        q.schedule_keyed_at(SimTime(7), 20, "b");
        // One of them in the overflow at the same far timestamp.
        q.schedule_keyed_at(SimTime(50_000), 2, "y");
        q.schedule_keyed_at(SimTime(50_000), 1, "x");
        assert_eq!(q.pop_keyed(), Some((SimTime(7), 10, "a")));
        assert_eq!(q.pop_keyed(), Some((SimTime(7), 20, "b")));
        assert_eq!(q.pop_keyed(), Some((SimTime(7), 30, "c")));
        assert_eq!(q.pop_keyed(), Some((SimTime(50_000), 1, "x")));
        assert_eq!(q.pop_keyed(), Some((SimTime(50_000), 2, "y")));
    }

    #[test]
    fn far_future_jump_works() {
        let mut q = CalendarQueue::new();
        q.schedule_at(SimTime(1_000_000), "far");
        q.schedule_at(SimTime(5), "near");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.now(), SimTime(1_000_000));
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_wheel_and_overflow_arrivals_fire_in_seq_order() {
        // Same timestamp reached two ways: via overflow decant and via a
        // direct wheel insert after the window has jumped. Order must still
        // be pure insertion sequence.
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let t = 50_000u64; // far outside the initial window
        cal.schedule_at(SimTime(t), 0); // overflow
        heap.schedule_at(SimTime(t), 0);
        cal.schedule_at(SimTime(2), 1); // wheel
        heap.schedule_at(SimTime(2), 1);
        assert_eq!(cal.pop(), heap.pop()); // pops 1, window jumps on next pop
        cal.schedule_at(SimTime(t), 2); // overflow again (window still early)
        heap.schedule_at(SimTime(t), 2);
        assert_eq!(cal.pop(), heap.pop()); // t arrives: seq 0 first
                                           // Window now covers t; a fresh same-time insert goes on the wheel.
        cal.schedule_at(SimTime(t), 3);
        heap.schedule_at(SimTime(t), 3);
        assert_eq!(cal.pop(), heap.pop()); // seq 2 (decanted) before seq 3
        assert_eq!(cal.pop(), heap.pop());
        assert!(cal.pop().is_none() && heap.pop().is_none());
    }

    #[test]
    fn sparse_schedule_matches_heap() {
        // Consecutive events many windows apart exercise the window jump
        // and the overflow decant path.
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut t = 0u64;
        for i in 0..200u64 {
            t += 10_000 + (i * 977) % 5_000;
            cal.schedule_at(SimTime(t), i);
            heap.schedule_at(SimTime(t), i);
        }
        while let Some(a) = cal.pop() {
            assert_eq!(Some(a), heap.pop());
        }
        assert!(heap.pop().is_none());
        assert_eq!(cal.events_processed(), 200);
    }

    #[test]
    fn interleaved_sparse_and_dense_matches_heap() {
        let mut rng = Rng::seed_from_u64(3);
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        for i in 0..2_000u64 {
            // Mostly tight spacing with occasional huge jumps.
            let d = if rng.below(50) == 0 {
                1_000_000 + rng.below(1_000_000)
            } else {
                rng.below(30)
            };
            cal.schedule_after(d, i);
            heap.schedule_after(d, i);
            if i % 3 == 0 {
                assert_eq!(cal.pop(), heap.pop(), "diverged at step {i}");
            }
        }
        loop {
            match (cal.pop(), heap.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn random_explicit_keys_match_heap() {
        // Keyed scheduling with keys assigned out of insertion order — the
        // contract the sharded engine relies on.
        let mut rng = Rng::seed_from_u64(41);
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        for i in 0..3_000u64 {
            let d = rng.below(40);
            // Unique but non-monotone keys (the low word makes them unique,
            // the random high word scrambles their order).
            let key = (rng.below(1 << 20) << 32) | i;
            let at_c = cal.now() + d;
            let at_h = heap.now() + d;
            assert_eq!(at_c, at_h);
            cal.schedule_keyed_at(at_c, key, i);
            heap.schedule_keyed_at(at_h, key, i);
            if i % 2 == 0 {
                assert_eq!(cal.pop_keyed(), heap.pop_keyed(), "diverged at step {i}");
            }
        }
        loop {
            match (cal.pop_keyed(), heap.pop_keyed()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn peek_time_agrees_with_pop() {
        let mut rng = Rng::seed_from_u64(17);
        let mut cal = CalendarQueue::new();
        for i in 0..500u64 {
            let d = if rng.below(20) == 0 {
                100_000 + rng.below(10_000)
            } else {
                rng.below(60)
            };
            cal.schedule_after(d, i);
            if i % 4 == 0 {
                let peeked = cal.peek_time();
                let popped = cal.pop();
                assert_eq!(peeked, popped.map(|(t, _)| t));
            }
        }
        while let Some((t, _)) = {
            let peeked = cal.peek_time();
            let popped = cal.pop();
            assert_eq!(peeked, popped.map(|(t, _)| t));
            popped
        } {
            let _ = t;
        }
    }

    #[test]
    fn resize_preserves_everything() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u64 {
            q.schedule_at(SimTime(i * 17 % 4096), i);
        }
        assert_eq!(q.len(), 1000);
        let mut last = (SimTime::ZERO, 0u64);
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last.0);
            last = (t, 0);
            count += 1;
        }
        assert_eq!(count, 1000);
        assert_eq!(q.events_processed(), 1000);
    }

    #[test]
    fn matches_binary_heap_order_on_random_schedules() {
        // The decisive test: identical pop order to EventQueue under an
        // interleaved random hold pattern.
        let mut rng = Rng::seed_from_u64(99);
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        for i in 0..64u64 {
            let d = rng.below(100);
            cal.schedule_after(d, i);
            heap.schedule_after(d, i);
        }
        for i in 0..10_000u64 {
            let (tc, ec) = cal.pop().expect("calendar drained early");
            let (th, eh) = heap.pop().expect("heap drained early");
            assert_eq!((tc, ec), (th, eh), "diverged at step {i}");
            // Hold: reschedule a new event with a random delay.
            let d = rng.below(200);
            cal.schedule_after(d, i + 1000);
            heap.schedule_after(d, i + 1000);
        }
        // Drain both.
        loop {
            match (cal.pop(), heap.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(
                    a.as_ref().map(|(t, e)| (*t, *e)),
                    b.as_ref().map(|(t, e)| (*t, *e))
                ),
            }
        }
    }

    #[test]
    #[should_panic(expected = "clock is already")]
    fn scheduling_in_the_past_panics() {
        let mut q = CalendarQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::ZERO);
    }
}
