//! Validation of the DES engine against queueing theory.
//!
//! Simulates an M/M/1 queue (Poisson arrivals, exponential service, one
//! server) on the event calendar and checks the measured statistics against
//! the analytic results: server utilization rho = lambda/mu, mean number in
//! system L = rho/(1-rho), and Little's law L = lambda * W. If the engine's
//! clock, calendar ordering, or RNG were biased, these would not come out
//! right — this is an end-to-end correctness check of the substrate
//! independent of the multiprocessor model built on top of it.

use oracle_des::{BusyTracker, CalendarQueue, EventQueue, Rng, SimTime};

/// Exponential variate by inverse transform, scaled to integer time units.
/// `mean` is in time units; resolution loss from rounding is well below the
/// tolerances asserted here.
fn exp_sample(rng: &mut Rng, mean: f64) -> u64 {
    let u = 1.0 - rng.f64(); // (0, 1]
    (-mean * u.ln()).round().max(1.0) as u64
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival,
    Departure,
}

struct Measured {
    rho: f64,
    mean_in_system: f64,
    mean_sojourn: f64,
    arrival_rate: f64,
}

/// Run an M/M/1 simulation with the given event list implementation.
fn run_mm1<Q>(mut queue: Q, seed: u64, horizon: u64, mean_ia: f64, mean_svc: f64) -> Measured
where
    Q: Mm1Queue,
{
    let mut rng = Rng::seed_from_u64(seed);
    let mut waiting: Vec<SimTime> = Vec::new(); // arrival times of queued jobs
    let mut in_service: Option<SimTime> = None;
    let mut busy = BusyTracker::new();

    // Time-weighted number-in-system accumulator.
    let mut area = 0.0f64;
    let mut last_t = 0u64;
    let mut n_in_system = 0u32;
    let mut arrivals = 0u64;
    let mut completions = 0u64;
    let mut total_sojourn = 0u64;

    queue.push(exp_sample(&mut rng, mean_ia), Ev::Arrival);
    while let Some((t, ev)) = queue.next() {
        if t.units() > horizon {
            break;
        }
        area += n_in_system as f64 * (t.units() - last_t) as f64;
        last_t = t.units();
        match ev {
            Ev::Arrival => {
                arrivals += 1;
                n_in_system += 1;
                if in_service.is_none() {
                    in_service = Some(t);
                    busy.set_busy(t);
                    queue.push(exp_sample(&mut rng, mean_svc), Ev::Departure);
                } else {
                    waiting.push(t);
                }
                queue.push(exp_sample(&mut rng, mean_ia), Ev::Arrival);
            }
            Ev::Departure => {
                let arrived = in_service.take().expect("departure without a job");
                total_sojourn += t - arrived;
                completions += 1;
                n_in_system -= 1;
                if !waiting.is_empty() {
                    in_service = Some(waiting.remove(0));
                    queue.push(exp_sample(&mut rng, mean_svc), Ev::Departure);
                } else {
                    busy.set_idle(t);
                }
            }
        }
    }
    let t_end = SimTime(last_t);
    Measured {
        rho: busy.utilization(t_end),
        mean_in_system: area / last_t as f64,
        mean_sojourn: total_sojourn as f64 / completions as f64,
        arrival_rate: arrivals as f64 / last_t as f64,
    }
}

/// Minimal shared interface over the two event-list implementations.
trait Mm1Queue {
    fn push(&mut self, delay: u64, ev: Ev);
    fn next(&mut self) -> Option<(SimTime, Ev)>;
}

impl Mm1Queue for EventQueue<Ev> {
    fn push(&mut self, delay: u64, ev: Ev) {
        self.schedule_after(delay, ev);
    }
    fn next(&mut self) -> Option<(SimTime, Ev)> {
        self.pop()
    }
}

impl Mm1Queue for CalendarQueue<Ev> {
    fn push(&mut self, delay: u64, ev: Ev) {
        self.schedule_after(delay, ev);
    }
    fn next(&mut self) -> Option<(SimTime, Ev)> {
        self.pop()
    }
}

fn check(m: &Measured, mean_ia: f64, mean_svc: f64) {
    let rho = mean_svc / mean_ia;
    let l = rho / (1.0 - rho);
    assert!(
        (m.rho - rho).abs() < 0.03,
        "utilization {:.3} vs analytic {rho:.3}",
        m.rho
    );
    assert!(
        (m.mean_in_system - l).abs() / l < 0.12,
        "L = {:.3} vs analytic {l:.3}",
        m.mean_in_system
    );
    // Little's law: L = lambda * W.
    let little = m.arrival_rate * m.mean_sojourn;
    assert!(
        (m.mean_in_system - little).abs() / m.mean_in_system < 0.08,
        "Little's law violated: L {:.3} vs lambda*W {:.3}",
        m.mean_in_system,
        little
    );
}

#[test]
fn mm1_matches_theory_on_the_binary_heap() {
    // rho = 0.5: mean inter-arrival 200, mean service 100.
    let m = run_mm1(EventQueue::new(), 42, 4_000_000, 200.0, 100.0);
    check(&m, 200.0, 100.0);
}

#[test]
fn mm1_matches_theory_on_the_calendar_queue() {
    let m = run_mm1(CalendarQueue::new(), 42, 4_000_000, 200.0, 100.0);
    check(&m, 200.0, 100.0);
}

#[test]
fn mm1_heavier_load() {
    // rho = 0.8: queueing dominates; L = 4.
    let m = run_mm1(EventQueue::new(), 7, 8_000_000, 125.0, 100.0);
    check(&m, 125.0, 100.0);
}

#[test]
fn both_event_lists_agree_exactly() {
    // Identical seed, identical sample path — not just statistics.
    let a = run_mm1(EventQueue::new(), 9, 1_000_000, 150.0, 100.0);
    let b = run_mm1(CalendarQueue::new(), 9, 1_000_000, 150.0, 100.0);
    assert_eq!(a.rho.to_bits(), b.rho.to_bits());
    assert_eq!(a.mean_in_system.to_bits(), b.mean_in_system.to_bits());
    assert_eq!(a.mean_sojourn.to_bits(), b.mean_sojourn.to_bits());
}
