//! The Takeuchi function (extension workload).
//!
//! `tak(x,y,z) = if y < x then tak(tak(x-1,y,z), tak(y-1,z,x), tak(z-1,x,y))
//! else z` — the classic symbolic-computation benchmark of the paper's era
//! (Lisp systems were routinely compared on it). Unlike dc and fib, a tak
//! task cannot finish when its first round of children responds: the three
//! results become the *arguments of a fourth recursive call*, so the task
//! spawns again — exercising the machine's multi-round continuation path
//! ("when it receives a response, it repeats the same cycle") on a real
//! computation rather than a synthetic phase structure.
//!
//! The simulated machine must produce the true Takeuchi value; the program
//! carries a memoized reference table (also used to generate the
//! continuation call's argument specs, since those are semantically the
//! values the first round will compute).

use std::collections::HashMap;

use oracle_model::{Continuation, Expansion, Program, TaskSpec};

type Args = (i32, i32, i32);

/// Reference Takeuchi value with memoization.
fn tak_memo(args: Args, values: &mut HashMap<Args, i32>) -> i32 {
    if let Some(&v) = values.get(&args) {
        return v;
    }
    let (x, y, z) = args;
    let v = if y >= x {
        z
    } else {
        let a = tak_memo((x - 1, y, z), values);
        let b = tak_memo((y - 1, z, x), values);
        let c = tak_memo((z - 1, x, y), values);
        tak_memo((a, b, c), values)
    };
    values.insert(args, v);
    v
}

/// Call-tree size (goals generated) with memoization over *distinct
/// argument triples*; the simulation revisits equal triples as separate
/// goals, so sizes are combined per call, not shared.
fn tree_size(args: Args, values: &mut HashMap<Args, i32>, sizes: &mut HashMap<Args, u64>) -> u64 {
    if let Some(&s) = sizes.get(&args) {
        return s;
    }
    let (x, y, z) = args;
    let s = if y >= x {
        1
    } else {
        let a = tak_memo((x - 1, y, z), values);
        let b = tak_memo((y - 1, z, x), values);
        let c = tak_memo((z - 1, x, y), values);
        1 + tree_size((x - 1, y, z), values, sizes)
            + tree_size((y - 1, z, x), values, sizes)
            + tree_size((z - 1, x, y), values, sizes)
            + tree_size((a, b, c), values, sizes)
    };
    sizes.insert(args, s);
    s
}

/// Pack `(y, z)` into the spec's second parameter.
fn pack(y: i32, z: i32) -> i64 {
    (((y as u32 as u64) << 32) | (z as u32 as u64)) as i64
}

/// Unpack a spec into its argument triple.
fn unpack(spec: &TaskSpec) -> Args {
    let x = spec.a as i32;
    let y = (spec.b as u64 >> 32) as u32 as i32;
    let z = (spec.b as u64 & 0xFFFF_FFFF) as u32 as i32;
    (x, y, z)
}

/// The Takeuchi computation `tak(x, y, z)`.
#[derive(Debug, Clone)]
pub struct Tak {
    args: Args,
    /// Memoized reference values (needed to build continuation specs).
    values: HashMap<Args, i32>,
    /// Total goals the computation will generate.
    goals: u64,
}

impl Tak {
    /// Build `tak(x, y, z)`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is outside `-64..=64` (keeps the memo table
    /// and the call tree to benchmark-sized instances).
    pub fn new(x: i64, y: i64, z: i64) -> Self {
        for v in [x, y, z] {
            assert!((-64..=64).contains(&v), "tak argument {v} out of range");
        }
        let args = (x as i32, y as i32, z as i32);
        let mut values = HashMap::new();
        let mut sizes = HashMap::new();
        tak_memo(args, &mut values); // populate every reachable triple
        let goals = tree_size(args, &mut values, &mut sizes);
        Tak {
            args,
            values,
            goals,
        }
    }

    /// The paper-era benchmark instance `tak(18, 12, 6)` (63,609 calls).
    pub fn benchmark() -> Self {
        Tak::new(18, 12, 6)
    }

    fn spec_of(args: Args) -> TaskSpec {
        TaskSpec::new(args.0 as i64, pack(args.1, args.2))
    }

    fn child_of(parent: &TaskSpec, args: Args) -> TaskSpec {
        let mut c = parent.child(args.0 as i64, pack(args.1, args.2));
        c.tag = 0;
        c
    }
}

impl Program for Tak {
    fn name(&self) -> String {
        format!("tak({},{},{})", self.args.0, self.args.1, self.args.2)
    }

    fn root(&self) -> TaskSpec {
        Self::spec_of(self.args)
    }

    fn expand(&self, spec: &TaskSpec) -> Expansion {
        let (x, y, z) = unpack(spec);
        if y >= x {
            Expansion::Leaf(z as i64)
        } else {
            Expansion::Split(
                [
                    Self::child_of(spec, (x - 1, y, z)),
                    Self::child_of(spec, (y - 1, z, x)),
                    Self::child_of(spec, (z - 1, x, y)),
                ]
                .into(),
            )
        }
    }

    fn combine(&self, _spec: &TaskSpec, _acc: i64, child: i64) -> i64 {
        // Round 0's three argument values are regenerated from the memo for
        // the continuation call; round 1 has exactly one child, whose value
        // *is* this task's value.
        child
    }

    fn continue_after(&self, spec: &TaskSpec, round: u32, acc: i64) -> Continuation {
        if round == 0 {
            let (x, y, z) = unpack(spec);
            let a = self.values[&(x - 1, y, z)];
            let b = self.values[&(y - 1, z, x)];
            let c = self.values[&(z - 1, x, y)];
            Continuation::Spawn([Self::child_of(spec, (a, b, c))].into())
        } else {
            Continuation::Done(acc)
        }
    }

    fn expected_goals(&self) -> Option<u64> {
        Some(self.goals)
    }

    fn expected_result(&self) -> Option<i64> {
        Some(self.values[&self.args] as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_run;

    #[test]
    fn classic_values() {
        assert_eq!(Tak::new(18, 12, 6).expected_result(), Some(7));
        assert_eq!(Tak::new(10, 5, 0).expected_result(), Some(5));
        assert_eq!(Tak::new(0, 0, 0).expected_result(), Some(0));
        // Leaf case: y >= x answers z immediately.
        assert_eq!(Tak::new(1, 2, 3).expected_result(), Some(3));
    }

    #[test]
    fn benchmark_instance_size() {
        // The classic instrumentation result: tak(18,12,6) makes 63,609
        // calls.
        assert_eq!(Tak::benchmark().expected_goals(), Some(63_609));
    }

    #[test]
    fn reference_executor_matches_memo() {
        for (x, y, z) in [(7, 4, 2), (10, 5, 0), (8, 4, 0), (1, 2, 3)] {
            let p = Tak::new(x, y, z);
            let (goals, result) = reference_run(&p);
            assert_eq!(Some(result), p.expected_result(), "tak({x},{y},{z})");
            assert_eq!(Some(goals), p.expected_goals(), "tak({x},{y},{z}) size");
        }
    }

    #[test]
    fn pack_unpack_round_trips_negatives() {
        for (y, z) in [(0, 0), (-1, 5), (12, -3), (-64, 64)] {
            let spec = TaskSpec::new(7, pack(y, z));
            assert_eq!(unpack(&spec), (7, y, z));
        }
    }

    #[test]
    fn continuation_structure() {
        let p = Tak::new(5, 2, 1);
        let root = p.root();
        match p.expand(&root) {
            Expansion::Split(c) => assert_eq!(c.len(), 3),
            Expansion::Leaf(_) => panic!("tak(5,2,1) must recurse"),
        }
        match p.continue_after(&root, 0, 0) {
            Continuation::Spawn(c) => assert_eq!(c.len(), 1),
            Continuation::Done(_) => panic!("round 0 must respawn"),
        }
        assert!(matches!(
            p.continue_after(&root, 1, 9),
            Continuation::Done(9)
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_arguments_panic() {
        Tak::new(100, 0, 0);
    }
}
