//! A seeded random task tree with heterogeneous grain sizes (extension
//! workload).
//!
//! The paper's workloads have uniform grains and fixed fan-out. Real
//! symbolic computations do not, so this workload draws each task's fan-out
//! and its execution-cost multiplier from a deterministic hash of the task's
//! position (so the *same* tree is generated regardless of execution order
//! or placement — a requirement for comparing strategies on identical work).
//!
//! Like [`crate::Lopsided`], every task returns its subtree's node count, so
//! the root result must equal the number of goals generated.

use oracle_model::{Expansion, Program, TaskList, TaskSpec};

/// SplitMix64 finalizer — the per-task hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random task tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomTree {
    budget: i64,
    max_children: u32,
    grain_spread: u64,
    seed: u64,
}

impl RandomTree {
    /// A tree of exactly `budget` tasks; splitting tasks have 1 to
    /// `max_children` children; task cost multipliers are uniform in
    /// `1..=grain_spread`.
    ///
    /// # Panics
    ///
    /// Panics unless `budget >= 1`, `max_children >= 2`, `grain_spread >= 1`.
    pub fn new(budget: i64, max_children: u32, grain_spread: u64, seed: u64) -> Self {
        assert!(budget >= 1, "budget must be at least 1");
        assert!(max_children >= 2, "max_children must be at least 2");
        assert!(grain_spread >= 1, "grain_spread must be at least 1");
        RandomTree {
            budget,
            max_children,
            grain_spread,
            seed,
        }
    }

    /// The per-task hash: position (encoded in `b`) mixed with the seed.
    fn task_hash(&self, spec: &TaskSpec) -> u64 {
        mix(self.seed ^ spec.b as u64)
    }
}

impl Program for RandomTree {
    fn name(&self) -> String {
        format!(
            "random({},{},{},seed={})",
            self.budget, self.max_children, self.grain_spread, self.seed
        )
    }

    fn root(&self) -> TaskSpec {
        // `a` is the remaining budget; `b` is the path hash.
        TaskSpec::new(self.budget, mix(self.seed) as i64)
    }

    fn expand(&self, spec: &TaskSpec) -> Expansion {
        let n = spec.a;
        if n <= 1 {
            return Expansion::Leaf(1);
        }
        let h = self.task_hash(spec);
        let rest = n - 1;
        let k = 1 + (h % self.max_children as u64).min(rest as u64 - 1) as i64;
        // Distribute `rest` over k children: base share plus remainder to
        // the first few, each child perturbed hash-deterministically.
        let base = rest / k;
        let extra = rest % k;
        let mut children = TaskList::new();
        for i in 0..k {
            let share = base + i64::from(i < extra);
            if share >= 1 {
                let mut c = spec.child(share, 0);
                c.b = mix(h ^ (i as u64 + 1)) as i64;
                children.push(c);
            }
        }
        debug_assert!(!children.is_empty());
        Expansion::Split(children)
    }

    fn combine_init(&self, _spec: &TaskSpec) -> i64 {
        1
    }

    fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
        acc + child
    }

    fn work_multiplier(&self, spec: &TaskSpec) -> u64 {
        1 + self.task_hash(spec).rotate_left(17) % self.grain_spread
    }

    fn expected_goals(&self) -> Option<u64> {
        Some(self.budget as u64)
    }

    fn expected_result(&self) -> Option<i64> {
        Some(self.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_run;

    #[test]
    fn budget_is_exact() {
        for seed in 0..8 {
            let p = RandomTree::new(500, 4, 3, seed);
            let (goals, result) = reference_run(&p);
            assert_eq!(goals, 500, "seed {seed}");
            assert_eq!(result, 500, "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_give_different_trees() {
        let a = RandomTree::new(100, 4, 1, 1);
        let b = RandomTree::new(100, 4, 1, 2);
        // Compare the children of the two roots.
        let ea = a.expand(&a.root());
        let eb = b.expand(&b.root());
        assert_ne!(ea, eb);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = RandomTree::new(300, 3, 5, 42);
        let b = RandomTree::new(300, 3, 5, 42);
        // Walk both trees in lockstep.
        fn collect(p: &RandomTree, spec: &TaskSpec, out: &mut Vec<(i64, i64, u64)>) {
            out.push((spec.a, spec.b, p.work_multiplier(spec)));
            if let Expansion::Split(c) = p.expand(spec) {
                for s in c {
                    collect(p, &s, out);
                }
            }
        }
        let mut va = Vec::new();
        let mut vb = Vec::new();
        collect(&a, &a.root(), &mut va);
        collect(&b, &b.root(), &mut vb);
        assert_eq!(va, vb);
    }

    #[test]
    fn fanout_respects_bounds() {
        let p = RandomTree::new(1000, 4, 1, 7);
        fn walk(p: &RandomTree, spec: &TaskSpec) {
            if let Expansion::Split(c) = p.expand(spec) {
                assert!((1..=4).contains(&c.len()), "fanout {}", c.len());
                for s in &c {
                    assert!(s.a >= 1);
                    walk(p, s);
                }
            }
        }
        walk(&p, &p.root());
    }

    #[test]
    fn multipliers_span_the_spread() {
        let p = RandomTree::new(2000, 4, 3, 9);
        let mut seen = [false; 3];
        fn walk(p: &RandomTree, spec: &TaskSpec, seen: &mut [bool; 3]) {
            seen[(p.work_multiplier(spec) - 1) as usize] = true;
            if let Expansion::Split(c) = p.expand(spec) {
                for s in c {
                    walk(p, &s, seen);
                }
            }
        }
        walk(&p, &p.root(), &mut seen);
        assert!(
            seen.iter().all(|&s| s),
            "multiplier values missing: {seen:?}"
        );
    }

    #[test]
    fn unit_budget_is_leaf() {
        let p = RandomTree::new(1, 4, 1, 0);
        assert_eq!(p.expand(&p.root()), Expansion::Leaf(1));
    }
}
