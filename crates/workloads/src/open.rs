//! The `open:` workload family — an arrival process paired with the task
//! subtree each arriving request spawns.
//!
//! Closed workloads (`fib:18`, `dc:4181`, ...) run one task tree to
//! completion; an open workload keeps injecting fresh trees at edge PEs for
//! a fixed duration, which is the regime steady-state latency and capacity
//! questions live in. The combined spec reads
//! `open:ARRIVAL/WORKLOAD`, e.g. `open:poisson:5@all/fib:11` — the last `/`
//! separates the two halves, so `trace:` file paths containing slashes stay
//! intact.

use std::fmt;
use std::str::FromStr;

use oracle_model::{ArrivalSpec, OpenTraffic, ARRIVAL_GRAMMAR};

use crate::spec::{ParseWorkloadError, WorkloadSpec, WORKLOAD_GRAMMAR};

/// The accepted open-workload grammar, quoted in every parse error.
pub const OPEN_WORKLOAD_GRAMMAR: &str = "open:ARRIVAL/WORKLOAD";

/// An arrival process plus the per-request task subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenWorkload {
    /// What each arriving request computes.
    pub workload: WorkloadSpec,
    /// When and where requests arrive.
    pub arrivals: ArrivalSpec,
}

impl OpenWorkload {
    /// Build the traffic config for this workload with the given duration.
    pub fn traffic(&self, duration: u64) -> OpenTraffic {
        OpenTraffic::new(self.arrivals.clone(), duration)
    }
}

impl fmt::Display for OpenWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "open:{}/{}", self.arrivals, self.workload)
    }
}

impl FromStr for OpenWorkload {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |what: String| {
            ParseWorkloadError(format!(
                "{what}; expected {OPEN_WORKLOAD_GRAMMAR} where ARRIVAL is \
                 {ARRIVAL_GRAMMAR} and WORKLOAD is {WORKLOAD_GRAMMAR}"
            ))
        };
        let rest = s
            .strip_prefix("open:")
            .ok_or_else(|| err(format!("{s:?} does not start with `open:`")))?;
        let (arrival, workload) = rest
            .rsplit_once('/')
            .ok_or_else(|| err(format!("{s:?} has no `/` between arrival and workload")))?;
        let arrivals: ArrivalSpec = arrival.parse().map_err(|e| err(format!("{e}")))?;
        let workload: WorkloadSpec = workload.parse().map_err(|e| err(format!("{e}")))?;
        Ok(OpenWorkload { workload, arrivals })
    }
}

/// Either a closed workload or an open one — what a CLI workload token or a
/// suite line denotes.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyWorkload {
    /// A single task tree run to completion.
    Closed(WorkloadSpec),
    /// An arrival process spawning task trees for a fixed duration.
    Open(OpenWorkload),
}

impl AnyWorkload {
    /// The per-task-tree workload in either case.
    pub fn workload(&self) -> WorkloadSpec {
        match self {
            AnyWorkload::Closed(w) => *w,
            AnyWorkload::Open(o) => o.workload,
        }
    }
}

impl fmt::Display for AnyWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyWorkload::Closed(w) => w.fmt(f),
            AnyWorkload::Open(o) => o.fmt(f),
        }
    }
}

impl FromStr for AnyWorkload {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.starts_with("open:") {
            Ok(AnyWorkload::Open(s.parse()?))
        } else {
            Ok(AnyWorkload::Closed(s.parse()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_combined_specs() {
        for s in [
            "open:poisson:5/fib:11",
            "open:burst:8x1x200x800@root/dc:1x55",
            "open:diurnal:6x5000@0,3/random:200x4x3x7",
        ] {
            let parsed: OpenWorkload = s.parse().unwrap();
            assert_eq!(parsed.to_string(), s);
            let any: AnyWorkload = s.parse().unwrap();
            assert_eq!(any, AnyWorkload::Open(parsed));
        }
    }

    #[test]
    fn trace_paths_keep_their_slashes() {
        let o: OpenWorkload = "open:trace:/tmp/a/b.txt@all/fib:9".parse().unwrap();
        assert_eq!(o.workload, WorkloadSpec::fib(9));
        assert_eq!(o.arrivals.to_string(), "trace:/tmp/a/b.txt");
    }

    #[test]
    fn errors_name_the_broken_half() {
        let cases = [
            ("open:poisson:5", "no `/`"),
            ("open:poisson:zap/fib:9", "\"zap\""),
            ("open:poisson:5/fib:bad", "\"bad\""),
            ("poisson:5/fib:9", "does not start with `open:`"),
        ];
        for (bad, needle) in cases {
            let msg = bad.parse::<OpenWorkload>().unwrap_err().to_string();
            assert!(msg.contains(needle), "{bad:?}: {msg}");
            assert!(msg.contains(OPEN_WORKLOAD_GRAMMAR), "{bad:?}: {msg}");
        }
    }

    #[test]
    fn any_workload_dispatches_on_prefix() {
        let c: AnyWorkload = "fib:9".parse().unwrap();
        assert_eq!(c, AnyWorkload::Closed(WorkloadSpec::fib(9)));
        assert_eq!(c.workload(), WorkloadSpec::fib(9));
        let o: AnyWorkload = "open:poisson:3/fib:9".parse().unwrap();
        assert_eq!(o.workload(), WorkloadSpec::fib(9));
        assert!("open:junk".parse::<AnyWorkload>().is_err());
    }

    #[test]
    fn traffic_builder_applies_duration() {
        let o: OpenWorkload = "open:poisson:5/fib:9".parse().unwrap();
        let t = o.traffic(10_000);
        assert_eq!(t.duration, 10_000);
        assert_eq!(t.warmup, 1_000);
    }
}
