//! # oracle-workloads — the simulated computations
//!
//! The paper deliberately chose "predictable computation\[s\], whose structure
//! is easy to grasp", so that simulation features are attributable to the
//! load-balancing scheme rather than to the workload:
//!
//! * [`dc::DivideConquer`] — `dc(M,N) ← if M = N then M else
//!   dc(M,(M+N)/2) + dc(1+(M+N)/2, N)`: a well-balanced binary tree.
//! * [`fib::Fibonacci`] — doubly-recursive naive Fibonacci: a
//!   not-so-well-balanced tree.
//!
//! Both "compute" real values through the simulated machine, which
//! end-to-end checks the whole message plumbing. This crate adds extension
//! workloads beyond the paper: strongly skewed trees
//! ([`lopsided::Lopsided`]), seeded random trees with heterogeneous grain
//! ([`random_tree::RandomTree`]), and multi-phase computations whose
//! parallelism rises and falls in cycles ([`cyclic::Cyclic`]) — the "real
//! life" shape the paper says its two workloads stand in for.

pub mod cyclic;
pub mod dc;
pub mod fib;
pub mod lopsided;
pub mod open;
pub mod random_tree;
pub mod spec;
pub mod tak;

pub use cyclic::Cyclic;
pub use dc::DivideConquer;
pub use fib::Fibonacci;
pub use lopsided::Lopsided;
pub use open::{AnyWorkload, OpenWorkload, OPEN_WORKLOAD_GRAMMAR};
pub use random_tree::RandomTree;
pub use spec::{WorkloadSpec, WORKLOAD_GRAMMAR};
pub use tak::Tak;

/// The paper's six Fibonacci problem sizes.
pub const PAPER_FIB_SIZES: [i64; 6] = [7, 9, 11, 13, 15, 18];

/// The paper's six divide-and-conquer problem sizes (`dc(1, X)`); note they
/// are Fibonacci numbers, chosen so each dc tree has exactly as many goals
/// as the fib computation of the matching index.
pub const PAPER_DC_SIZES: [i64; 6] = [21, 55, 144, 377, 987, 4181];

#[cfg(test)]
pub(crate) mod reference {
    use oracle_model::{Continuation, Expansion, Program, TaskSpec};

    /// Walk a program's task tree sequentially (reference executor) and
    /// return `(goals, result)`.
    pub fn reference_run(p: &dyn Program) -> (u64, i64) {
        fn eval(p: &dyn Program, spec: &TaskSpec, goals: &mut u64) -> i64 {
            *goals += 1;
            match p.expand(spec) {
                Expansion::Leaf(v) => v,
                Expansion::Split(children) => {
                    let mut round = 0;
                    let mut kids = children;
                    loop {
                        let mut acc = p.combine_init(spec);
                        for c in &kids {
                            acc = p.combine(spec, acc, eval(p, c, goals));
                        }
                        match p.continue_after(spec, round, acc) {
                            Continuation::Done(v) => return v,
                            Continuation::Spawn(next) => {
                                kids = next;
                                round += 1;
                            }
                        }
                    }
                }
            }
        }
        let mut goals = 0;
        let v = eval(p, &p.root(), &mut goals);
        (goals, v)
    }
}

#[cfg(test)]
mod tests {
    use super::reference::reference_run;
    use super::*;

    #[test]
    fn paper_sizes_correspond() {
        // dc(1, X) has 2X - 1 goals; fib(n) has 2*fib(n+1) - 1 goals, and
        // X was chosen as fib(n+1), so the pairs match exactly.
        for (fib_n, dc_x) in PAPER_FIB_SIZES.iter().zip(PAPER_DC_SIZES) {
            let (fib_goals, _) = reference_run(&Fibonacci::new(*fib_n));
            let (dc_goals, _) = reference_run(&DivideConquer::new(1, dc_x));
            assert_eq!(fib_goals, dc_goals, "fib({fib_n}) vs dc(1,{dc_x})");
        }
    }
}
