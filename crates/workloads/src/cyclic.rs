//! A multi-phase computation whose parallelism rises and falls in cycles
//! (extension workload).
//!
//! "In real life computations, the parallelism may rise and fall in cycles."
//! The paper's dc/fib trees have a single rise and fall; this workload
//! chains `phases` rounds: in each round the root task spawns `width`
//! independent dc-style subtrees of `leaves` leaves each and waits for all
//! of them before launching the next round. Between rounds the machine
//! drains — exactly the regime where CWN's inability to redistribute old
//! work and GM's slow restart should differ.

use oracle_model::{Continuation, Expansion, Program, TaskList, TaskSpec};

/// Tag value marking the root task.
const TAG_ROOT: u32 = 0;
/// Tag value marking in-phase dc subtree tasks.
const TAG_DC: u32 = 1;

/// A computation of `phases` sequential rounds of `width` parallel dc trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cyclic {
    phases: u32,
    width: u32,
    leaves: i64,
}

impl Cyclic {
    /// Build a cyclic computation.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are at least 1.
    pub fn new(phases: u32, width: u32, leaves: i64) -> Self {
        assert!(phases >= 1, "need at least one phase");
        assert!(width >= 1, "need at least one subtree per phase");
        assert!(leaves >= 1, "need at least one leaf per subtree");
        Cyclic {
            phases,
            width,
            leaves,
        }
    }

    /// The `width` subtree specs of one phase.
    fn phase_children(&self, root: &TaskSpec) -> TaskList {
        (0..self.width)
            .map(|_| {
                let mut c = root.child(1, self.leaves);
                c.tag = TAG_DC;
                c
            })
            .collect()
    }
}

impl Program for Cyclic {
    fn name(&self) -> String {
        format!("cyclic({}x{}x{})", self.phases, self.width, self.leaves)
    }

    fn root(&self) -> TaskSpec {
        TaskSpec::new(0, 0) // tag = TAG_ROOT
    }

    fn expand(&self, spec: &TaskSpec) -> Expansion {
        match spec.tag {
            TAG_ROOT => Expansion::Split(self.phase_children(spec)),
            TAG_DC => {
                if spec.a == spec.b {
                    Expansion::Leaf(spec.a)
                } else {
                    let mid = (spec.a + spec.b) / 2;
                    Expansion::Split([spec.child(spec.a, mid), spec.child(mid + 1, spec.b)].into())
                }
            }
            t => unreachable!("unknown cyclic task tag {t}"),
        }
    }

    fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
        acc + child
    }

    fn continue_after(&self, spec: &TaskSpec, round: u32, acc: i64) -> Continuation {
        if spec.tag == TAG_ROOT && round + 1 < self.phases {
            Continuation::Spawn(self.phase_children(spec))
        } else {
            Continuation::Done(acc)
        }
    }

    fn expected_goals(&self) -> Option<u64> {
        // Root + phases * width * (2*leaves - 1) dc-subtree nodes.
        Some(1 + self.phases as u64 * self.width as u64 * (2 * self.leaves as u64 - 1))
    }

    fn expected_result(&self) -> Option<i64> {
        // Every phase yields width * sum(1..=leaves); the root reports the
        // final phase's total.
        Some(self.width as i64 * self.leaves * (self.leaves + 1) / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_run;

    #[test]
    fn goal_count_and_result_match_formulas() {
        for (phases, width, leaves) in [(1, 1, 1), (3, 4, 8), (5, 2, 21)] {
            let p = Cyclic::new(phases, width, leaves);
            let (goals, result) = reference_run(&p);
            assert_eq!(Some(goals), p.expected_goals(), "{phases}x{width}x{leaves}");
            assert_eq!(
                Some(result),
                p.expected_result(),
                "{phases}x{width}x{leaves}"
            );
        }
    }

    #[test]
    fn root_respawns_exactly_phases_times() {
        let p = Cyclic::new(3, 2, 4);
        let root = p.root();
        assert!(matches!(
            p.continue_after(&root, 0, 0),
            Continuation::Spawn(_)
        ));
        assert!(matches!(
            p.continue_after(&root, 1, 0),
            Continuation::Spawn(_)
        ));
        assert!(matches!(
            p.continue_after(&root, 2, 99),
            Continuation::Done(99)
        ));
    }

    #[test]
    fn subtree_tasks_never_respawn() {
        let p = Cyclic::new(3, 2, 4);
        let mut dc = p.root().child(1, 4);
        dc.tag = 1;
        assert!(matches!(
            p.continue_after(&dc, 0, 10),
            Continuation::Done(10)
        ));
    }

    #[test]
    fn phase_width_is_respected() {
        let p = Cyclic::new(2, 7, 3);
        match p.expand(&p.root()) {
            Expansion::Split(c) => assert_eq!(c.len(), 7),
            Expansion::Leaf(_) => panic!("root must split"),
        }
    }
}
