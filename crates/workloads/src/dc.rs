//! The paper's divide-and-conquer program:
//! `dc(M,N) ← if M = N then M else dc(M,(M+N)/2) + dc(1+(M+N)/2, N)`.
//!
//! "The dc computation provides a well balanced tree." Its result is the sum
//! `M + (M+1) + … + N`, which the simulated machine must reproduce exactly.

use oracle_model::{Expansion, Program, TaskSpec};

/// The `dc(M, N)` divide-and-conquer computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivideConquer {
    m: i64,
    n: i64,
}

impl DivideConquer {
    /// Build `dc(m, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `m > n`.
    pub fn new(m: i64, n: i64) -> Self {
        assert!(m <= n, "dc requires M <= N, got ({m}, {n})");
        DivideConquer { m, n }
    }

    /// The paper's standard instance `dc(1, x)`.
    pub fn paper(x: i64) -> Self {
        DivideConquer::new(1, x)
    }

    /// Number of leaves (`N - M + 1`).
    pub fn leaves(&self) -> u64 {
        (self.n - self.m + 1) as u64
    }
}

impl Program for DivideConquer {
    fn name(&self) -> String {
        format!("dc({},{})", self.m, self.n)
    }

    fn root(&self) -> TaskSpec {
        TaskSpec::new(self.m, self.n)
    }

    fn expand(&self, spec: &TaskSpec) -> Expansion {
        if spec.a == spec.b {
            Expansion::Leaf(spec.a)
        } else {
            let mid = (spec.a + spec.b) / 2;
            Expansion::Split([spec.child(spec.a, mid), spec.child(mid + 1, spec.b)].into())
        }
    }

    fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
        acc + child
    }

    fn expected_goals(&self) -> Option<u64> {
        // A binary tree with L leaves has 2L - 1 nodes.
        Some(2 * self.leaves() - 1)
    }

    fn expected_result(&self) -> Option<i64> {
        // Sum of the arithmetic series M..=N.
        Some((self.m + self.n) * (self.n - self.m + 1) / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_run;

    #[test]
    fn small_tree_shape() {
        let p = DivideConquer::new(1, 4);
        match p.expand(&p.root()) {
            Expansion::Split(c) => {
                assert_eq!(c[0].a, 1);
                assert_eq!(c[0].b, 2);
                assert_eq!(c[1].a, 3);
                assert_eq!(c[1].b, 4);
                assert_eq!(c[0].depth, 1);
            }
            Expansion::Leaf(_) => panic!("should split"),
        }
        assert_eq!(p.expand(&TaskSpec::new(3, 3)), Expansion::Leaf(3));
    }

    #[test]
    fn reference_matches_analytic_formulas() {
        for x in [1, 2, 3, 21, 55, 144] {
            let p = DivideConquer::paper(x);
            let (goals, result) = reference_run(&p);
            assert_eq!(Some(goals), p.expected_goals(), "goals of dc(1,{x})");
            assert_eq!(Some(result), p.expected_result(), "result of dc(1,{x})");
        }
    }

    #[test]
    fn offset_range() {
        let p = DivideConquer::new(10, 19);
        let (goals, result) = reference_run(&p);
        assert_eq!(goals, 19);
        assert_eq!(result, 145);
        assert_eq!(p.expected_result(), Some(145));
    }

    #[test]
    fn singleton_is_a_leaf() {
        let p = DivideConquer::new(7, 7);
        let (goals, result) = reference_run(&p);
        assert_eq!((goals, result), (1, 7));
    }

    #[test]
    fn tree_is_balanced() {
        // Max depth of dc(1, 2^k) is exactly k.
        fn max_depth(p: &DivideConquer, spec: &TaskSpec) -> u32 {
            match p.expand(spec) {
                Expansion::Leaf(_) => spec.depth,
                Expansion::Split(c) => c.iter().map(|s| max_depth(p, s)).max().unwrap(),
            }
        }
        let p = DivideConquer::new(1, 64);
        assert_eq!(max_depth(&p, &p.root()), 6);
    }

    #[test]
    #[should_panic(expected = "M <= N")]
    fn inverted_range_panics() {
        DivideConquer::new(5, 4);
    }
}
