//! A deliberately skewed task tree (extension workload).
//!
//! Each task carries a *budget* `n` of descendants-plus-self; a splitting
//! task gives a fraction `skew_pct`% of the remaining budget to its left
//! child and the rest to the right. At `skew_pct = 50` this resembles the
//! paper's balanced dc tree; at 90 it degenerates toward a deep left spine,
//! stressing a load distributor far harder than fib's mild imbalance.
//!
//! Every task returns the node count of its subtree, so the root's result
//! must equal the number of goals generated — a built-in conservation check.

use oracle_model::{Expansion, Program, TaskList, TaskSpec};

/// A skewed binary task tree with an exact node budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lopsided {
    budget: i64,
    skew_pct: i64,
}

impl Lopsided {
    /// A tree of exactly `budget` tasks, splitting `skew_pct`% of each
    /// remaining budget to the left child.
    ///
    /// # Panics
    ///
    /// Panics unless `budget >= 1` and `1 <= skew_pct <= 99`.
    pub fn new(budget: i64, skew_pct: i64) -> Self {
        assert!(budget >= 1, "budget must be at least 1");
        assert!(
            (1..=99).contains(&skew_pct),
            "skew_pct must be in 1..=99, got {skew_pct}"
        );
        Lopsided { budget, skew_pct }
    }

    /// Split a remaining budget into (left, right) child budgets.
    fn split_budget(&self, rest: i64) -> (i64, i64) {
        debug_assert!(rest >= 1);
        let left = (rest * self.skew_pct / 100).clamp(0, rest);
        (left, rest - left)
    }
}

impl Program for Lopsided {
    fn name(&self) -> String {
        format!("lopsided({},{}%)", self.budget, self.skew_pct)
    }

    fn root(&self) -> TaskSpec {
        TaskSpec::new(self.budget, 0)
    }

    fn expand(&self, spec: &TaskSpec) -> Expansion {
        let n = spec.a;
        if n <= 1 {
            return Expansion::Leaf(1);
        }
        let (left, right) = self.split_budget(n - 1);
        let mut children = TaskList::new();
        if left >= 1 {
            children.push(spec.child(left, 0));
        }
        if right >= 1 {
            children.push(spec.child(right, 0));
        }
        debug_assert!(!children.is_empty());
        Expansion::Split(children)
    }

    fn combine_init(&self, _spec: &TaskSpec) -> i64 {
        1 // count this node itself
    }

    fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
        acc + child
    }

    fn expected_goals(&self) -> Option<u64> {
        // The budget is exact: every unit of budget becomes exactly one task.
        Some(self.budget as u64)
    }

    fn expected_result(&self) -> Option<i64> {
        Some(self.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_run;

    #[test]
    fn budget_is_exact_across_skews() {
        for skew in [1, 25, 50, 75, 99] {
            for budget in [1, 2, 3, 10, 257, 1000] {
                let p = Lopsided::new(budget, skew);
                let (goals, result) = reference_run(&p);
                assert_eq!(goals, budget as u64, "goals at skew {skew}");
                assert_eq!(result, budget, "result at skew {skew}");
            }
        }
    }

    #[test]
    fn skew_controls_depth() {
        fn max_depth(p: &Lopsided, spec: &TaskSpec) -> u32 {
            match p.expand(spec) {
                Expansion::Leaf(_) => spec.depth,
                Expansion::Split(c) => c.iter().map(|s| max_depth(p, s)).max().unwrap(),
            }
        }
        let balanced = Lopsided::new(1023, 50);
        let skewed = Lopsided::new(1023, 90);
        let d_bal = max_depth(&balanced, &balanced.root());
        let d_skew = max_depth(&skewed, &skewed.root());
        assert!(
            d_skew > 2 * d_bal,
            "skewed depth {d_skew} not much deeper than balanced {d_bal}"
        );
    }

    #[test]
    fn unit_budget_is_single_leaf() {
        let p = Lopsided::new(1, 50);
        assert_eq!(p.expand(&p.root()), Expansion::Leaf(1));
    }

    #[test]
    fn extreme_skew_produces_single_child_chains() {
        // skew 1% with small budgets: left child gets 0, so the node has a
        // single right child — a chain, which the machine must handle.
        let p = Lopsided::new(5, 1);
        match p.expand(&p.root()) {
            Expansion::Split(c) => assert_eq!(c.len(), 1),
            Expansion::Leaf(_) => panic!("budget 5 must split"),
        }
        let (goals, result) = reference_run(&p);
        assert_eq!((goals, result), (5, 5));
    }

    #[test]
    #[should_panic(expected = "skew_pct")]
    fn bad_skew_panics() {
        Lopsided::new(10, 0);
    }
}
