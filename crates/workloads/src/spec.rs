//! Declarative workload specifications.

use std::fmt;
use std::str::FromStr;

use oracle_model::Program;
use serde::{Deserialize, Serialize};

use crate::{Cyclic, DivideConquer, Fibonacci, Lopsided, RandomTree, Tak};

/// A description of a simulated computation.
///
/// ```
/// use oracle_workloads::WorkloadSpec;
///
/// let spec: WorkloadSpec = "fib:18".parse().unwrap();
/// assert_eq!(spec.num_goals(), 8361); // the paper's Table-3 total
/// let program = spec.build();
/// assert_eq!(program.expected_result(), Some(2584));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Naive doubly-recursive Fibonacci of `n`.
    Fibonacci { n: i64 },
    /// `dc(m, n)` divide-and-conquer.
    DivideConquer { m: i64, n: i64 },
    /// Skewed tree: exactly `budget` tasks, `skew_pct`% of budget to the
    /// left child.
    Lopsided { budget: i64, skew_pct: i64 },
    /// Seeded random tree with heterogeneous grains.
    RandomTree {
        budget: i64,
        max_children: u32,
        grain_spread: u64,
        seed: u64,
    },
    /// `phases` sequential rounds of `width` parallel dc trees of `leaves`
    /// leaves.
    Cyclic {
        phases: u32,
        width: u32,
        leaves: i64,
    },
    /// The Takeuchi function `tak(x, y, z)`.
    Tak { x: i64, y: i64, z: i64 },
}

impl WorkloadSpec {
    /// The paper's `dc(1, x)` instance.
    pub fn dc(x: i64) -> Self {
        WorkloadSpec::DivideConquer { m: 1, n: x }
    }

    /// The paper's `fib(n)` instance.
    pub fn fib(n: i64) -> Self {
        WorkloadSpec::Fibonacci { n }
    }

    /// Instantiate the program.
    pub fn build(&self) -> Box<dyn Program> {
        match *self {
            WorkloadSpec::Fibonacci { n } => Box::new(Fibonacci::new(n)),
            WorkloadSpec::DivideConquer { m, n } => Box::new(DivideConquer::new(m, n)),
            WorkloadSpec::Lopsided { budget, skew_pct } => {
                Box::new(Lopsided::new(budget, skew_pct))
            }
            WorkloadSpec::RandomTree {
                budget,
                max_children,
                grain_spread,
                seed,
            } => Box::new(RandomTree::new(budget, max_children, grain_spread, seed)),
            WorkloadSpec::Cyclic {
                phases,
                width,
                leaves,
            } => Box::new(Cyclic::new(phases, width, leaves)),
            WorkloadSpec::Tak { x, y, z } => Box::new(Tak::new(x, y, z)),
        }
    }

    /// Total goals this workload will generate.
    pub fn num_goals(&self) -> u64 {
        self.build()
            .expected_goals()
            .expect("all built-in workloads know their goal count")
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WorkloadSpec::Fibonacci { n } => write!(f, "fib:{n}"),
            WorkloadSpec::DivideConquer { m, n } => write!(f, "dc:{m}x{n}"),
            WorkloadSpec::Lopsided { budget, skew_pct } => {
                write!(f, "lopsided:{budget}x{skew_pct}")
            }
            WorkloadSpec::RandomTree {
                budget,
                max_children,
                grain_spread,
                seed,
            } => write!(f, "random:{budget}x{max_children}x{grain_spread}x{seed}"),
            WorkloadSpec::Cyclic {
                phases,
                width,
                leaves,
            } => write!(f, "cyclic:{phases}x{width}x{leaves}"),
            WorkloadSpec::Tak { x, y, z } => write!(f, "tak:{x}x{y}x{z}"),
        }
    }
}

/// The accepted workload grammar, quoted in every parse error.
pub const WORKLOAD_GRAMMAR: &str = "fib:N | dc:N | dc:MxN | lopsided:BUDGETxSKEW \
     | random:BUDGETxKIDSxSPREADxSEED | cyclic:PHASESxWIDTHxLEAVES | tak:XxYxZ";

/// Error parsing a [`WorkloadSpec`] from a string.
///
/// The message names the offending token and quotes the valid grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError(pub String);

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload spec: {}", self.0)
    }
}

impl std::error::Error for ParseWorkloadError {}

impl FromStr for WorkloadSpec {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |what: String| ParseWorkloadError(format!("{what}; expected {WORKLOAD_GRAMMAR}"));
        let (kind, args) = s
            .split_once(':')
            .ok_or_else(|| err(format!("{s:?} has no `:` between kind and arguments")))?;
        let nums: Vec<i64> = args
            .split('x')
            .map(|p| {
                p.parse()
                    .map_err(|_| err(format!("{p:?} in {s:?} is not an integer")))
            })
            .collect::<Result<_, _>>()?;
        let arity = |want: &str| {
            err(format!(
                "{kind}: takes {want} argument(s), got {} in {s:?}",
                nums.len()
            ))
        };
        match (kind, nums.as_slice()) {
            ("fib", [n]) => Ok(WorkloadSpec::fib(*n)),
            ("dc", [x]) => Ok(WorkloadSpec::dc(*x)),
            ("dc", [m, n]) => Ok(WorkloadSpec::DivideConquer { m: *m, n: *n }),
            ("lopsided", [budget, skew]) => Ok(WorkloadSpec::Lopsided {
                budget: *budget,
                skew_pct: *skew,
            }),
            ("random", [budget, mc, gs, seed]) => Ok(WorkloadSpec::RandomTree {
                budget: *budget,
                max_children: *mc as u32,
                grain_spread: *gs as u64,
                seed: *seed as u64,
            }),
            ("cyclic", [p, w, l]) => Ok(WorkloadSpec::Cyclic {
                phases: *p as u32,
                width: *w as u32,
                leaves: *l,
            }),
            ("tak", [x, y, z]) => Ok(WorkloadSpec::Tak {
                x: *x,
                y: *y,
                z: *z,
            }),
            ("fib", _) => Err(arity("1")),
            ("dc", _) => Err(arity("1 or 2")),
            ("lopsided", _) => Err(arity("2")),
            ("random", _) => Err(arity("4")),
            ("cyclic", _) | ("tak", _) => Err(arity("3")),
            _ => Err(err(format!("unknown workload kind {kind:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_display_parse() {
        let specs = [
            WorkloadSpec::fib(18),
            WorkloadSpec::dc(4181),
            WorkloadSpec::DivideConquer { m: 3, n: 99 },
            WorkloadSpec::Lopsided {
                budget: 500,
                skew_pct: 80,
            },
            WorkloadSpec::RandomTree {
                budget: 400,
                max_children: 4,
                grain_spread: 3,
                seed: 7,
            },
            WorkloadSpec::Cyclic {
                phases: 4,
                width: 8,
                leaves: 20,
            },
            WorkloadSpec::Tak { x: 10, y: 5, z: 0 },
        ];
        for spec in specs {
            let parsed: WorkloadSpec = spec.to_string().parse().unwrap();
            assert_eq!(parsed, spec);
        }
    }

    #[test]
    fn build_produces_expected_programs() {
        assert_eq!(WorkloadSpec::fib(10).build().name(), "fib(10)");
        assert_eq!(WorkloadSpec::dc(21).build().name(), "dc(1,21)");
        assert_eq!(WorkloadSpec::fib(18).num_goals(), 8361);
        assert_eq!(WorkloadSpec::dc(4181).num_goals(), 8361);
    }

    #[test]
    fn parse_rejects_nonsense() {
        for bad in ["", "fib", "fib:x", "dc:1x2x3", "nope:1"] {
            assert!(bad.parse::<WorkloadSpec>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn parse_errors_name_token_and_grammar() {
        let cases = [
            ("fib", "no `:`"),
            ("fib:x", "is not an integer"),
            ("dc:1x2x3", "takes 1 or 2 argument(s), got 3"),
            ("nope:1", "unknown workload kind \"nope\""),
        ];
        for (bad, needle) in cases {
            let msg = bad.parse::<WorkloadSpec>().unwrap_err().to_string();
            assert!(msg.contains(needle), "{bad:?}: {msg}");
            assert!(msg.contains(WORKLOAD_GRAMMAR), "{bad:?}: {msg}");
        }
    }
}
