//! The paper's naive Fibonacci program:
//! `fib(M) ← if M < 2 then M else fib(M-1) + fib(M-2)`.
//!
//! "The fibonacci yields a not-so-well-balanced tree." The paper is explicit
//! that the point is the computation *tree*, not an efficient Fibonacci.

use oracle_model::{Expansion, Program, TaskSpec};

/// Closed-form `fib(n)` for validation (iterative, exact for `n <= 90`).
pub fn fib_value(n: i64) -> i64 {
    assert!((0..=90).contains(&n), "fib({n}) out of supported range");
    let (mut a, mut b) = (0i64, 1i64);
    for _ in 0..n {
        (a, b) = (b, a + b);
    }
    a
}

/// Number of calls the naive doubly-recursive fib(n) makes: `2*fib(n+1)-1`.
pub fn fib_call_tree_size(n: i64) -> u64 {
    (2 * fib_value(n + 1) - 1) as u64
}

/// The naive doubly-recursive Fibonacci computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fibonacci {
    n: i64,
}

impl Fibonacci {
    /// Build `fib(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is negative or large enough to overflow `i64`.
    pub fn new(n: i64) -> Self {
        assert!((0..=90).contains(&n), "fib({n}) out of supported range");
        Fibonacci { n }
    }
}

impl Program for Fibonacci {
    fn name(&self) -> String {
        format!("fib({})", self.n)
    }

    fn root(&self) -> TaskSpec {
        TaskSpec::new(self.n, 0)
    }

    fn expand(&self, spec: &TaskSpec) -> Expansion {
        if spec.a < 2 {
            Expansion::Leaf(spec.a)
        } else {
            Expansion::Split([spec.child(spec.a - 1, 0), spec.child(spec.a - 2, 0)].into())
        }
    }

    fn combine(&self, _spec: &TaskSpec, acc: i64, child: i64) -> i64 {
        acc + child
    }

    fn expected_goals(&self) -> Option<u64> {
        Some(fib_call_tree_size(self.n))
    }

    fn expected_result(&self) -> Option<i64> {
        Some(fib_value(self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_run;

    #[test]
    fn fib_values() {
        assert_eq!(fib_value(0), 0);
        assert_eq!(fib_value(1), 1);
        assert_eq!(fib_value(10), 55);
        assert_eq!(fib_value(18), 2584);
        assert_eq!(fib_value(90), 2880067194370816120);
    }

    #[test]
    fn call_tree_sizes_match_paper_goal_counts() {
        // fib(18) generates 8361 goals — the paper's Table-3 histogram for
        // GM sums to exactly this.
        assert_eq!(fib_call_tree_size(18), 8361);
        assert_eq!(fib_call_tree_size(7), 41);
    }

    #[test]
    fn reference_matches_analytic() {
        for n in [0, 1, 2, 7, 11, 15] {
            let p = Fibonacci::new(n);
            let (goals, result) = reference_run(&p);
            assert_eq!(Some(goals), p.expected_goals(), "goals of fib({n})");
            assert_eq!(Some(result), p.expected_result(), "result of fib({n})");
        }
    }

    #[test]
    fn tree_is_unbalanced() {
        // fib's left subtree (n-1) is much deeper than the right (n-2):
        // depth along the left spine is n-1 while a balanced tree of the
        // same size would have depth ~log2.
        fn max_depth(p: &Fibonacci, spec: &TaskSpec) -> u32 {
            match p.expand(spec) {
                Expansion::Leaf(_) => spec.depth,
                Expansion::Split(c) => c.iter().map(|s| max_depth(p, s)).max().unwrap(),
            }
        }
        let p = Fibonacci::new(12);
        assert_eq!(max_depth(&p, &p.root()), 11);
    }

    #[test]
    #[should_panic(expected = "out of supported range")]
    fn overflow_guard() {
        Fibonacci::new(91);
    }
}
