//! Open-traffic extension: maximum sustainable Poisson arrival rate per
//! (topology, strategy) under a p99 sojourn-time target. Not a paper table
//! — the paper runs one task tree to completion — but the sizing question
//! a production load balancer is judged by, asked of the same four
//! configurations.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin capacity [--quick] [--csv] [--json]
//! ```

use oracle::experiments::capacity;
use oracle_bench::HarnessArgs;

fn main() {
    // `--json` is specific to this harness: the per-probe search trail
    // does not fit an aligned table.
    let json = std::env::args().any(|a| a == "--json");
    let args = HarnessArgs::parse_with(&["--json"]);
    let cells = capacity::run(args.fidelity, args.seed);
    if json {
        println!("{}", capacity::to_json(&cells));
        return;
    }
    args.emit(&capacity::render(&cells, args.fidelity));
    if !args.csv {
        let probes: usize = cells.iter().map(|c| c.probes.len()).sum();
        println!(
            "{} probe runs across {} configurations (--json for the search trail)",
            probes,
            cells.len()
        );
    }
}
