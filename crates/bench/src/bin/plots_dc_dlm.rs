//! Regenerates Plots 1–5: average PE utilization vs number of goals for
//! the divide-and-conquer computations on the double-lattice-meshes
//! (20×20 span 5, 16×16 span 4, 10×10 span 5, 8×8 span 4, 5×5 span 5).
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin plots_dc_dlm [--quick] [--csv]
//! ```

use oracle::experiments::plots;
use oracle::topo::TopologySpec;
use oracle_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    let workloads = plots::plot_workloads(args.fidelity, false);
    for &side in args.fidelity.grid_sides().iter().rev() {
        let p = plots::util_vs_goals(TopologySpec::dlm(side), &workloads, args.seed);
        args.emit(&plots::render_util_vs_goals(&p));
        if !args.csv {
            println!();
            let to_series =
                |line: &plots::Line| line.points.iter().map(|&(g, u)| (g, u)).collect::<Vec<_>>();
            println!(
                "{}",
                oracle::chart::cwn_gm_chart(
                    format!("{} ({} PEs)", p.topology, p.topology.num_pes()),
                    "no. of goals",
                    &to_series(&p.cwn),
                    &to_series(&p.gm),
                )
            );
        }
    }
}
