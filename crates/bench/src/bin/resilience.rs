//! Resilience extension: CWN vs GM under injected faults (PE crashes and
//! message loss) with the recovery layer enabled. Not a paper table — the
//! paper assumes a fault-free machine — but the same comparison question
//! asked of a machine that misbehaves.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin resilience [--quick] [--csv] [--json]
//! ```

use oracle::experiments::resilience;
use oracle_bench::HarnessArgs;

fn main() {
    // `--json` is specific to this harness: the full per-cell fault
    // counters do not fit an aligned table.
    let json = std::env::args().any(|a| a == "--json");
    let args = HarnessArgs::parse_with(&["--json"]);
    let cells = resilience::run(args.fidelity, args.seed);
    if json {
        println!("{}", resilience::to_json(&cells));
        return;
    }
    args.emit(&resilience::render(&cells));
    if !args.csv {
        let completed = cells.iter().filter(|c| c.completed).count();
        let respawned: u64 = cells.iter().map(|c| c.faults.goals_respawned).sum();
        let dropped: u64 = cells.iter().map(|c| c.faults.messages_dropped).sum();
        println!(
            "{completed}/{} runs completed with the correct result; \
             {respawned} goals re-spawned, {dropped} messages dropped in total",
            cells.len()
        );
        println!("(--json for per-cell fault counters)");
    }
}
