//! Regenerate `BENCH_scale.json`: events/sec and peak RSS vs PE count.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin scale [-- --quick] [--seed N] [--out FILE]
//! cargo run --release -p oracle-bench --bin scale -- --cell torus:316   # one cell, in-process
//! cargo run --release -p oracle-bench --bin scale -- --check FILE      # schema validation
//! ```
//!
//! `VmHWM` is a per-process monotonic high-water mark, so the default mode
//! re-executes this binary once per cell (`--cell`) and collects each
//! child's `CELL {...}` line — every recorded peak RSS belongs to exactly
//! one cell. `--cell` alone runs in-process and prints the line (this is
//! what CI's `scale-smoke` job wraps in `/usr/bin/time -v`). `--check`
//! validates a committed `BENCH_scale.json` without running anything.

use std::path::PathBuf;
use std::process::Command;

use oracle_bench::scale::{
    cell_line, cell_names, parse_cell_line, run_cell, to_json, validate_json,
};

fn main() {
    let mut quick = false;
    let mut seed = 1u64;
    let mut out = PathBuf::from("BENCH_scale.json");
    let mut cell: Option<String> = None;
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            "--cell" => cell = Some(args.next().expect("--cell needs a topology spec")),
            "--check" => check = Some(PathBuf::from(args.next().expect("--check needs a path"))),
            other => panic!("unknown flag {other}"),
        }
    }

    if let Some(path) = check {
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        match validate_json(&json) {
            Ok(()) => {
                eprintln!("{}: schema valid", path.display());
                return;
            }
            Err(problems) => {
                eprintln!("{}: INVALID\n{problems}", path.display());
                std::process::exit(2);
            }
        }
    }

    if let Some(name) = cell {
        // Child mode: one cell, this process, peak RSS is ours alone.
        let c = run_cell(&name, seed);
        println!("{}", cell_line(&c));
        return;
    }

    // Parent mode: one subprocess per cell so VmHWM readings don't bleed
    // across cells.
    let exe = std::env::current_exe().expect("own executable path");
    let mut cells = Vec::new();
    for name in cell_names(quick) {
        eprintln!("running {name} ...");
        let output = Command::new(&exe)
            .args(["--cell", name, "--seed", &seed.to_string()])
            .output()
            .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        if !output.status.success() {
            panic!(
                "cell {name} failed ({}):\n{}",
                output.status,
                String::from_utf8_lossy(&output.stderr)
            );
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        let c = stdout
            .lines()
            .find_map(parse_cell_line)
            .unwrap_or_else(|| panic!("cell {name} printed no CELL line:\n{stdout}"));
        eprintln!(
            "{:<16} {:>9} PEs  {:>9} events  {:>8.2} s  {:>12.0} events/s  peak RSS {:>7.1} MiB",
            c.name,
            c.pes,
            c.events,
            c.wall_secs,
            c.events_per_sec,
            c.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        );
        cells.push(c);
    }
    let json = to_json(&cells, seed);
    if !quick {
        // A quick grid intentionally omits the large decades, which the
        // full-schema validation requires.
        validate_json(&json).unwrap_or_else(|problems| {
            panic!("fresh scale grid failed its own schema validation:\n{problems}")
        });
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    eprintln!("wrote {}", out.display());
}
