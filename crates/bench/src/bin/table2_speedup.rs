//! Regenerates the paper's Table 2, "Speedup of CWN over GM": the full
//! 2 problem types × 6 sizes × 2 topology families × 5 sizes comparison
//! (240 simulation runs, 120 ratio cells), plus the paper's summary claims
//! (how many cells CWN wins, how many significantly).
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin table2_speedup [--quick] [--csv]
//! ```

use oracle::experiments::table2;
use oracle_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    let cells = table2::run(args.fidelity, args.seed);
    args.emit(&table2::render(&cells));
    if !args.csv {
        let s = table2::summarize(&cells);
        println!(
            "CWN better in {}/{} cells; significantly (>10%) better in {}; \
             ratio range {:.2} .. {:.2}",
            s.cwn_wins, s.cells, s.significant, s.min_ratio, s.max_ratio
        );
        println!("(paper: better in 118/120, significant in 110, up to ~3x on grids)");
    }
}
