//! Regenerate every paper table and figure into a results directory.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin regen_all [--quick] [--seed N] [--only PREFIX] [DIR]
//! ```
//!
//! Writes one text file per harness (the same output the individual
//! binaries print) plus an index, so `results/` can be rebuilt from scratch
//! with a single command. `--only PREFIX` regenerates just the files whose
//! name starts with PREFIX (e.g. `--only degradation`) and leaves the index
//! untouched.

use std::fmt::Write as _;
use std::path::PathBuf;

use oracle::builder::paper_strategies;
use oracle::experiments::{
    ablations, appendix, capacity, degradation, plots, resilience, table1, table2, table3, Fidelity,
};
use oracle::prelude::*;
use oracle::runner::seed_sweep;
use oracle::table::f2;

fn main() {
    // Accept the common flags plus an optional output directory.
    let mut dir = PathBuf::from("results");
    let mut fidelity = Fidelity::Paper;
    let mut seed = 1u64;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--only" => only = Some(args.next().expect("--only needs a file-name prefix")),
            other if !other.starts_with('-') => dir = PathBuf::from(other),
            other => panic!("unknown flag {other}"),
        }
    }
    let want = |name: &str| only.as_deref().is_none_or(|o| name.starts_with(o));
    std::fs::create_dir_all(&dir).expect("create results dir");
    let mut index = String::from("# results/ — regenerated harness outputs\n\n");

    let mut save = |name: &str, content: String| {
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap_or_else(|e| panic!("write {name}: {e}"));
        let _ = writeln!(index, "- `{name}`");
        eprintln!("wrote {}", path.display());
    };

    // Table 1.
    if want("table1_opt") {
        let grid = table1::optimize(fidelity, true, seed);
        let dlm = table1::optimize(fidelity, false, seed);
        let mut out = table1::render(&grid, &dlm).to_string();
        out.push('\n');
        out += &table1::render_sweep("CWN sweep (grid)", &grid.cwn_sweep).to_string();
        out.push('\n');
        out += &table1::render_sweep("GM sweep (grid)", &grid.gm_sweep).to_string();
        out.push('\n');
        out += &table1::render_sweep("CWN sweep (dlm)", &dlm.cwn_sweep).to_string();
        out.push('\n');
        out += &table1::render_sweep("GM sweep (dlm)", &dlm.gm_sweep).to_string();
        save("table1_opt.txt", out);
    }

    // Table 2.
    if want("table2_speedup") {
        let cells = table2::run(fidelity, seed);
        let s = table2::summarize(&cells);
        let mut out = table2::render(&cells).to_string();
        let _ = writeln!(
            out,
            "\nCWN better in {}/{} cells; significantly (>10%) better in {}; \
             ratio range {:.2} .. {:.2}",
            s.cwn_wins, s.cells, s.significant, s.min_ratio, s.max_ratio
        );
        save("table2_speedup.txt", out);
    }

    // Table 3.
    if want("table3_hops") {
        let d = table3::run(fidelity, seed);
        let mut out = table3::render(&d).to_string();
        let _ = writeln!(
            out,
            "\ngoal-message hops: CWN {} vs GM {}",
            d.cwn.traffic.goal_hops, d.gm.traffic.goal_hops
        );
        save("table3_hops.txt", out);
    }

    // Plots 1–10 (+ fib analogues).
    for (name, fib, dlm_family) in [
        ("plots_dc_grid.txt", false, false),
        ("plots_dc_dlm.txt", false, true),
        ("plots_fib.txt", true, true), // fib writes both families below
    ] {
        if !want(name) {
            continue;
        }
        let workloads = plots::plot_workloads(fidelity, fib);
        let mut out = String::new();
        for &side in fidelity.grid_sides().iter().rev() {
            let topos: Vec<TopologySpec> = if fib {
                vec![TopologySpec::dlm(side), TopologySpec::grid(side)]
            } else if dlm_family {
                vec![TopologySpec::dlm(side)]
            } else {
                vec![TopologySpec::grid(side)]
            };
            for topology in topos {
                let p = plots::util_vs_goals(topology, &workloads, seed);
                out += &plots::render_util_vs_goals(&p).to_string();
                out.push('\n');
                let to_series = |line: &plots::Line| line.points.clone();
                out += &oracle::chart::cwn_gm_chart(
                    format!("{} ({} PEs)", p.topology, p.topology.num_pes()),
                    "no. of goals",
                    &to_series(&p.cwn),
                    &to_series(&p.gm),
                );
                out.push('\n');
            }
        }
        save(name, out);
    }

    // Plots 11–16.
    for (name, grid_family) in [("plots_time_grid.txt", true), ("plots_time_dlm.txt", false)] {
        if !want(name) {
            continue;
        }
        let (topology, sizes, interval): (TopologySpec, &[i64], u64) = match fidelity {
            Fidelity::Paper => (
                if grid_family {
                    TopologySpec::grid(10)
                } else {
                    TopologySpec::dlm(10)
                },
                &[18, 15, 9],
                100,
            ),
            Fidelity::Quick => (
                if grid_family {
                    TopologySpec::grid(5)
                } else {
                    TopologySpec::dlm(5)
                },
                &[13, 9],
                50,
            ),
        };
        let mut out = String::new();
        for &n in sizes {
            let p = plots::util_vs_time(topology, WorkloadSpec::fib(n), interval, seed);
            out += &plots::render_util_vs_time(&p).to_string();
            out.push('\n');
            out += &oracle::chart::cwn_gm_chart(
                format!("{} on {}", p.workload, p.topology),
                "time (units)",
                &p.cwn,
                &p.gm,
            );
            out.push('\n');
        }
        save(name, out);
    }

    // Appendix.
    if want("appendix_hypercube") {
        let mut out = String::new();
        for p in appendix::goals_plots(fidelity, seed) {
            out += &plots::render_util_vs_goals(&p).to_string();
            out.push('\n');
        }
        for p in appendix::time_plots(fidelity, seed) {
            out += &plots::render_util_vs_time(&p).to_string();
            out.push('\n');
        }
        save("appendix_hypercube.txt", out);
    }

    // Ablations.
    if want("ablations") {
        let sections = [
            ("CWN radius sweep", ablations::radius_sweep(fidelity, seed)),
            (
                "CWN horizon sweep",
                ablations::horizon_sweep(fidelity, seed),
            ),
            (
                "GM interval sweep",
                ablations::gm_interval_sweep(fidelity, seed),
            ),
            (
                "Load metric: future commitments",
                ablations::load_metric(fidelity, seed),
            ),
            (
                "Load information freshness",
                ablations::load_info(fidelity, seed),
            ),
            (
                "Communication co-processor",
                ablations::coprocessor(fidelity, seed),
            ),
            (
                "Communication/computation ratio",
                ablations::comm_ratio(fidelity, seed),
            ),
            ("Grid wraparound", ablations::wraparound(fidelity, seed)),
            ("Strategy shootout", ablations::shootout(fidelity, seed)),
            (
                "Global-random vs CWN scalability (§2.1)",
                ablations::global_scalability(fidelity, seed),
            ),
            (
                "Workload breadth (extension workloads)",
                ablations::workload_breadth(fidelity, seed),
            ),
            (
                "Queue discipline (FIFO/LIFO/deepest)",
                ablations::queue_discipline(fidelity, seed),
            ),
            (
                "Heterogeneous PE speeds",
                ablations::heterogeneity(fidelity, seed),
            ),
            (
                "Dimensionality at 64 PEs (k-ary n-cubes)",
                ablations::dimensionality(fidelity, seed),
            ),
        ];
        let mut out = String::new();
        for (title, points) in sections {
            out += &ablations::render(title, &points).to_string();
            out.push('\n');
        }
        save("ablations.txt", out);
    }

    // Resilience under faults (extension).
    if want("resilience") {
        let cells = resilience::run(fidelity, seed);
        let completed = cells.iter().filter(|c| c.completed).count();
        let mut out = resilience::render(&cells).to_string();
        let _ = writeln!(
            out,
            "\n{completed}/{} runs completed with the correct result",
            cells.len()
        );
        out.push('\n');
        out += &resilience::to_json(&cells);
        out.push('\n');
        save("resilience.txt", out);
    }

    // Open-traffic capacity search (extension).
    if want("open_capacity") {
        let cells = capacity::run(fidelity, seed);
        let mut out = capacity::render(&cells, fidelity).to_string();
        out.push('\n');
        out += &capacity::to_json(&cells);
        out.push('\n');
        save("open_capacity.txt", out);
    }

    // Graceful degradation under overload (extension).
    if want("degradation") {
        let cells = degradation::run(fidelity, seed);
        degradation::verify(&cells)
            .unwrap_or_else(|e| panic!("degradation physics check failed:\n{e}"));
        assert!(
            cells.iter().any(
                |c| c.protected.goodput > 2.0 * c.baseline.goodput && c.protected.goodput > 0.0
            ),
            "no cell preserves >2x the unprotected goodput"
        );
        let best = cells
            .iter()
            .map(degradation::Cell::protection_ratio)
            .filter(|r| r.is_finite())
            .fold(0.0f64, f64::max);
        let mut out = degradation::render(&cells, fidelity).to_string();
        let _ = writeln!(
            out,
            "\nbest finite protection ratio {best:.1}x (inf where the unprotected baseline \
             preserved nothing); goodput degrades monotonically with fault intensity; every \
             run conserves arrivals"
        );
        out.push('\n');
        out += &degradation::to_json(&cells);
        out.push('\n');
        save("degradation.txt", out);
    }

    // Seed robustness.
    if want("seed_robustness") {
        let (configs, n_seeds): (Vec<(TopologySpec, WorkloadSpec)>, u64) = match fidelity {
            Fidelity::Paper => (
                vec![
                    (TopologySpec::grid(10), WorkloadSpec::fib(15)),
                    (TopologySpec::grid(20), WorkloadSpec::fib(18)),
                    (TopologySpec::dlm(10), WorkloadSpec::dc(987)),
                ],
                10,
            ),
            Fidelity::Quick => (vec![(TopologySpec::grid(5), WorkloadSpec::fib(11))], 4),
        };
        let mut table = Table::new(
            format!("Speedup across {n_seeds} seeds (mean ± std)"),
            &["configuration", "CWN", "GM", "mean ratio"],
        );
        for (topology, workload) in configs {
            let (cwn, gm) = paper_strategies(&topology);
            let sweep = |strategy| {
                seed_sweep(
                    SimulationBuilder::new()
                        .topology(topology)
                        .strategy(strategy)
                        .workload(workload)
                        .config(),
                    seed,
                    n_seeds,
                )
            };
            let c = sweep(cwn);
            let g = sweep(gm);
            table.row(vec![
                format!("{workload} on {topology}"),
                format!("{} ± {}", f2(c.mean()), f2(c.std_dev())),
                format!("{} ± {}", f2(g.mean()), f2(g.std_dev())),
                f2(c.mean() / g.mean()),
            ]);
        }
        save("seed_robustness.txt", table.to_string());
    }

    // Throughput baseline (events/sec and peak RSS across the bench grid).
    // The copy committed at the repo root is the tracked trajectory; this
    // one documents the machine the rest of results/ was generated on.
    if want("BENCH_throughput") {
        use oracle_bench::throughput::{run_grid, to_json};
        let reps = match fidelity {
            Fidelity::Paper => 3,
            Fidelity::Quick => 1,
        };
        let cells = run_grid(reps, seed, Default::default());
        save("BENCH_throughput.json", to_json(&cells, reps, seed));
    }

    // Scale grid (events/sec and peak RSS vs PE count). Cells run in
    // subprocesses (VmHWM is per-process monotone), so this shells out to
    // the `scale` binary rather than running in-process.
    if want("BENCH_scale") {
        use oracle_bench::scale::validate_json;
        let out = dir.join("BENCH_scale.json");
        let mut cmd = std::process::Command::new(env!("CARGO"));
        cmd.args([
            "run",
            "--release",
            "-p",
            "oracle-bench",
            "--bin",
            "scale",
            "--",
            "--seed",
            &seed.to_string(),
            "--out",
        ]);
        cmd.arg(&out);
        if matches!(fidelity, Fidelity::Quick) {
            cmd.arg("--quick");
        }
        let status = cmd.status().expect("spawn scale harness");
        assert!(status.success(), "scale harness failed: {status}");
        let json = std::fs::read_to_string(&out).expect("read fresh BENCH_scale.json");
        if matches!(fidelity, Fidelity::Paper) {
            validate_json(&json).unwrap_or_else(|problems| {
                panic!("fresh BENCH_scale.json failed schema validation:\n{problems}")
            });
        }
        let _ = writeln!(index, "- `BENCH_scale.json`");
        eprintln!("wrote {}", out.display());
    }

    if only.is_none() {
        std::fs::write(dir.join("README.md"), index).expect("write index");
    }
    eprintln!("done: {}", dir.display());
}
