//! Regenerates the paper's Table 1: the parameter-optimization
//! pre-experiments selecting each scheme's best parameters per topology
//! family.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin table1_opt [--quick] [--csv]
//! ```

use oracle::experiments::table1;
use oracle_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    let grid = table1::optimize(args.fidelity, true, args.seed);
    let dlm = table1::optimize(args.fidelity, false, args.seed);

    args.emit(&table1::render(&grid, &dlm));
    if !args.csv {
        println!();
        args.emit(&table1::render_sweep("CWN sweep (grid)", &grid.cwn_sweep));
        println!();
        args.emit(&table1::render_sweep("GM sweep (grid)", &grid.gm_sweep));
        println!();
        args.emit(&table1::render_sweep("CWN sweep (dlm)", &dlm.cwn_sweep));
        println!();
        args.emit(&table1::render_sweep("GM sweep (dlm)", &dlm.gm_sweep));
    }
}
