//! Regenerates the Fibonacci analogues of Plots 1–10 — "The Fibonacci plots
//! are very similar, so we omit them from the plots" — on both topology
//! families. (The fib data is summarized by the lower half of Table 2.)
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin plots_fib [--quick] [--csv]
//! ```

use oracle::experiments::plots;
use oracle::topo::TopologySpec;
use oracle_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    let workloads = plots::plot_workloads(args.fidelity, true);
    for &side in args.fidelity.grid_sides().iter().rev() {
        for topology in [TopologySpec::dlm(side), TopologySpec::grid(side)] {
            let p = plots::util_vs_goals(topology, &workloads, args.seed);
            args.emit(&plots::render_util_vs_goals(&p));
            if !args.csv {
                println!();
            }
        }
    }
}
