//! Regenerates Appendix I (Plots A-1..A-8): the hypercube experiments —
//! utilization vs goals for Fibonacci on hypercubes of dimension 5–7, and
//! utilization vs time on the dimension-7 hypercube.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin appendix_hypercube [--quick] [--csv]
//! ```

use oracle::experiments::{appendix, plots};
use oracle_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    for p in appendix::goals_plots(args.fidelity, args.seed) {
        args.emit(&plots::render_util_vs_goals(&p));
        if !args.csv {
            println!();
        }
    }
    for p in appendix::time_plots(args.fidelity, args.seed) {
        args.emit(&plots::render_util_vs_time(&p));
        if !args.csv {
            println!();
        }
    }
}
