//! Regenerates Plots 11–13: PE utilization over time (sampled per interval)
//! for Fibonacci of 18, 15 and 9 on the 100-PE double-lattice-mesh. The
//! shapes to look for: CWN's fast rise and its inability to hold 100%
//! (including the extended tail on fib(18)); GM holding 100% once reached.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin plots_time_dlm [--quick] [--csv]
//! ```

use oracle::experiments::plots;
use oracle::prelude::*;
use oracle_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    let (topology, sizes, interval): (TopologySpec, &[i64], u64) = match args.fidelity {
        oracle::experiments::Fidelity::Paper => (TopologySpec::dlm(10), &[18, 15, 9], 100),
        oracle::experiments::Fidelity::Quick => (TopologySpec::dlm(5), &[13, 9], 50),
    };
    for &n in sizes {
        let p = plots::util_vs_time(topology, WorkloadSpec::fib(n), interval, args.seed);
        args.emit(&plots::render_util_vs_time(&p));
        if !args.csv {
            println!();
            println!(
                "{}",
                oracle::chart::cwn_gm_chart(
                    format!("{} on {}", p.workload, p.topology),
                    "time (units)",
                    &p.cwn,
                    &p.gm,
                )
            );
        }
    }
}
