//! Regenerates the paper's Table 3: the distribution of distances travelled
//! by goal messages (fib(18) on a 10×10 grid), for CWN and GM.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin table3_hops [--quick] [--csv]
//! ```

use oracle::experiments::table3;
use oracle_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    let d = table3::run(args.fidelity, args.seed);
    args.emit(&table3::render(&d));
    if !args.csv {
        println!(
            "goal-message hops: CWN {} vs GM {} ({:.1}x; paper: \"typically … thrice as much\")",
            d.cwn.traffic.goal_hops,
            d.gm.traffic.goal_hops,
            d.cwn.traffic.goal_hops as f64 / d.gm.traffic.goal_hops.max(1) as f64,
        );
        println!(
            "(paper Table 3: CWN avg 3.15 with a spike at radius 9; GM avg 0.92, \
             ~half of all goals never leave their source)"
        );
    }
}
