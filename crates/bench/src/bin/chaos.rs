//! Chaos-fuzzing sweep: seeded random fault plans thrown at random
//! workload × topology × strategy combinations, auditor on, every case
//! under a panic catcher and a wall-clock watchdog. Failing cases are
//! shrunk to minimal reproducers and written as ready-to-run suite files.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin chaos -- \
//!     [--cases N] [--seed N] [--threads N] [--shards N|auto] \
//!     [--stall-secs S] [--out DIR]
//! ```
//!
//! Exits 0 when every case completes or is contained by its fault plan,
//! 2 when any case panics, violates an invariant, loses goals without a
//! plan to blame, or hangs. Outcomes are a pure function of
//! `(--cases, --seed)` — `--threads` changes wall clock only, and
//! `--shards` routes each eligible case through the sharded engine
//! (bit-identical by contract, so outcomes are unchanged; cases the
//! engine cannot split, e.g. those with fault plans, fall back
//! sequentially).

use std::time::Duration;

use oracle::chaos::{run_chaos, ChaosConfig};

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: chaos [--cases N] [--seed N] [--threads N] [--shards N|auto] \
         [--stall-secs S] [--out DIR]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

fn main() {
    let mut config = ChaosConfig::default();
    let mut out_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |flag: &str| -> u64 {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad {flag} value")))
        };
        match arg.as_str() {
            "--cases" => config.cases = num("--cases") as usize,
            "--seed" => config.seed = num("--seed"),
            "--threads" => match num("--threads") {
                0 => usage("--threads must be at least 1"),
                n => config.threads = n as usize,
            },
            "--shards" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--shards needs a value"));
                let shards = match v.as_str() {
                    "auto" => std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                    n => match n.parse() {
                        Ok(s) if s >= 1 => s,
                        _ => usage("--shards must be at least 1, or `auto`"),
                    },
                };
                oracle::runner::set_default_shards(shards);
            }
            "--stall-secs" => config.stall_timeout = Duration::from_secs(num("--stall-secs")),
            "--audit-every" => config.audit_every = num("--audit-every"),
            "--out" => {
                out_dir = Some(args.next().unwrap_or_else(|| usage("--out needs a value")));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    println!(
        "chaos sweep: {} cases, master seed {}, {} threads, auditor every {} events",
        config.cases, config.seed, config.threads, config.audit_every
    );
    let report = run_chaos(&config);
    for (case, outcome) in &report.outcomes {
        println!("  {} -> {outcome}", case.label());
    }
    println!(
        "chaos summary: {} completed, {} contained, {} failures",
        report.count("completed"),
        report.count("contained"),
        report.failures.len()
    );

    if let Some(dir) = &out_dir {
        if !report.failures.is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("error: creating {dir}: {e}");
                std::process::exit(2);
            });
        }
        for failure in &report.failures {
            let path = format!("{dir}/chaos-repro-{:03}.suite", failure.case.index);
            if let Err(e) = std::fs::write(&path, failure.reproducer()) {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(2);
            }
            println!("wrote reproducer {path}");
        }
    }

    if let Some(worst) = report.failures.first() {
        eprintln!(
            "error[chaos]: {} of {} cases failed; first: {} -> {}",
            report.failures.len(),
            config.cases,
            worst.shrunk.suite_line(),
            worst.shrunk_outcome
        );
        std::process::exit(2);
    }
}
