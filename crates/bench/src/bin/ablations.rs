//! The design-choice ablation studies DESIGN.md calls out: CWN radius and
//! horizon, GM interval, load metric, load-information freshness, the
//! communication co-processor, the communication/computation ratio, grid
//! wraparound, and the all-strategies shootout.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin ablations [--quick] [--csv]
//! ```

use oracle::experiments::ablations::{self, render};
use oracle_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    let (f, s) = (args.fidelity, args.seed);
    let sections = [
        ("CWN radius sweep", ablations::radius_sweep(f, s)),
        ("CWN horizon sweep", ablations::horizon_sweep(f, s)),
        ("GM interval sweep", ablations::gm_interval_sweep(f, s)),
        (
            "Load metric: future commitments",
            ablations::load_metric(f, s),
        ),
        ("Load information freshness", ablations::load_info(f, s)),
        ("Communication co-processor", ablations::coprocessor(f, s)),
        (
            "Communication/computation ratio",
            ablations::comm_ratio(f, s),
        ),
        ("Grid wraparound", ablations::wraparound(f, s)),
        ("Strategy shootout", ablations::shootout(f, s)),
        (
            "Global-random vs CWN scalability (\u{a7}2.1)",
            ablations::global_scalability(f, s),
        ),
        (
            "Workload breadth (extension workloads)",
            ablations::workload_breadth(f, s),
        ),
        (
            "Queue discipline (FIFO/LIFO/deepest)",
            ablations::queue_discipline(f, s),
        ),
        ("Heterogeneous PE speeds", ablations::heterogeneity(f, s)),
        (
            "Dimensionality at 64 PEs (k-ary n-cubes)",
            ablations::dimensionality(f, s),
        ),
    ];
    for (title, points) in sections {
        args.emit(&render(title, &points));
        if !args.csv {
            println!();
        }
    }
}
