//! Simulator throughput baseline: events/sec and peak RSS across a fixed
//! grid of (workload × topology × strategy) cells.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin throughput [--quick] [--seed N] \
//!     [--reps N] [--backend heap|calendar] [--out PATH] [--check PATH] \
//!     [--tolerance F]
//! ```
//!
//! Writes `BENCH_throughput.json` (or `--out PATH`). The committed copy at
//! the repo root is the tracked trajectory every PR is measured against:
//! `--check PATH` re-runs the grid and fails (exit 1) if the *aggregate*
//! events/sec (total events over total wall time — robust to single-cell
//! timing spikes) regressed by more than `--tolerance` (default 0.25)
//! relative to the stored numbers. CI runs that gate with `--reps 8`, since
//! comparing a single-shot measurement against a best-of-N baseline
//! confounds scheduling luck with real regressions.
//!
//! The cell grid is identical in `--quick` and full mode so the two JSON
//! files stay comparable; `--quick` only drops the repetition count from
//! best-of-3 to a single run (the fastest smoke signal, but noisy).
//!
//! All measurement logic lives in [`oracle_bench::throughput`]; this binary
//! only parses flags.

use oracle::model::QueueBackend;
use oracle_bench::throughput::{check, run_grid, to_json};

fn main() {
    let mut out_path = String::from("BENCH_throughput.json");
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut reps = 3usize;
    let mut seed = 1u64;
    let mut backend = QueueBackend::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--quick" => reps = 1,
            "--reps" => reps = parse(&value("--reps"), "--reps"),
            "--seed" => seed = parse(&value("--seed"), "--seed"),
            "--out" => out_path = value("--out"),
            "--check" => check_path = Some(value("--check")),
            "--tolerance" => tolerance = parse(&value("--tolerance"), "--tolerance"),
            "--backend" => {
                backend = match value("--backend").as_str() {
                    "heap" => QueueBackend::Heap,
                    "calendar" => QueueBackend::Calendar,
                    other => usage(&format!("--backend must be heap or calendar, got {other}")),
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let cells = run_grid(reps, seed, backend);
    let json = to_json(&cells, reps, seed);

    let ok = match &check_path {
        Some(path) => {
            let reference = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fatal(&format!("read {path}: {e}")));
            check(&cells, &reference, tolerance)
        }
        None => true,
    };

    std::fs::write(&out_path, &json).unwrap_or_else(|e| fatal(&format!("write {out_path}: {e}")));
    eprintln!("wrote {out_path}");
    if !ok {
        std::process::exit(1);
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("bad {flag} value {s}")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: throughput [--quick] [--reps N] [--seed N] [--backend heap|calendar] \
         [--out PATH] [--check PATH] [--tolerance F]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

fn fatal(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
