//! Regenerates Plots 14–16: PE utilization over time for Fibonacci of 18,
//! 15 and 9 on the 100-PE grid. The shapes to look for: CWN's much faster
//! rise; GM's flattening ("when about 40% of the PEs have received work,
//! most PEs think there is not sufficient work to distribute").
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin plots_time_grid [--quick] [--csv]
//! ```

use oracle::experiments::plots;
use oracle::prelude::*;
use oracle_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    let (topology, sizes, interval): (TopologySpec, &[i64], u64) = match args.fidelity {
        oracle::experiments::Fidelity::Paper => (TopologySpec::grid(10), &[18, 15, 9], 100),
        oracle::experiments::Fidelity::Quick => (TopologySpec::grid(5), &[13, 9], 50),
    };
    for &n in sizes {
        let p = plots::util_vs_time(topology, WorkloadSpec::fib(n), interval, args.seed);
        args.emit(&plots::render_util_vs_time(&p));
        if !args.csv {
            println!();
            println!(
                "{}",
                oracle::chart::cwn_gm_chart(
                    format!("{} on {}", p.workload, p.topology),
                    "time (units)",
                    &p.cwn,
                    &p.gm,
                )
            );
        }
    }
}
