//! Seed-robustness check: is the paper's headline (CWN ≫ GM) an artefact
//! of one random placement history, or mechanism?
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin seed_robustness [--quick] [--csv]
//! ```
//!
//! For each key configuration, runs both schemes under 10 different seeds
//! and reports the mean ± standard deviation of the speedups. The two
//! distributions must be cleanly separated for the headline to stand.

use oracle::builder::paper_strategies;
use oracle::experiments::Fidelity;
use oracle::prelude::*;
use oracle::runner::seed_sweep;
use oracle::table::f2;

fn main() {
    let args = oracle_bench::HarnessArgs::parse();
    let (configs, n_seeds): (Vec<(TopologySpec, WorkloadSpec)>, u64) = match args.fidelity {
        Fidelity::Paper => (
            vec![
                (TopologySpec::grid(10), WorkloadSpec::fib(15)),
                (TopologySpec::grid(20), WorkloadSpec::fib(18)),
                (TopologySpec::dlm(10), WorkloadSpec::dc(987)),
            ],
            10,
        ),
        Fidelity::Quick => (vec![(TopologySpec::grid(5), WorkloadSpec::fib(11))], 4),
    };

    let mut table = Table::new(
        format!("Speedup across {n_seeds} seeds (mean ± std)"),
        &["configuration", "CWN", "GM", "mean ratio", "separated?"],
    );
    for (topology, workload) in configs {
        let (cwn, gm) = paper_strategies(&topology);
        let sweep = |strategy| {
            seed_sweep(
                SimulationBuilder::new()
                    .topology(topology)
                    .strategy(strategy)
                    .workload(workload)
                    .config(),
                args.seed,
                n_seeds,
            )
        };
        let c = sweep(cwn);
        let g = sweep(gm);
        // Cleanly separated: the worst CWN seed still beats the best GM seed.
        let c_min = c.speedups.iter().copied().fold(f64::INFINITY, f64::min);
        let g_max = g.speedups.iter().copied().fold(0.0f64, f64::max);
        table.row(vec![
            format!("{workload} on {topology}"),
            format!("{} ± {}", f2(c.mean()), f2(c.std_dev())),
            format!("{} ± {}", f2(g.mean()), f2(g.std_dev())),
            f2(c.mean() / g.mean()),
            if c_min > g_max { "yes" } else { "no" }.into(),
        ]);
    }
    args.emit(&table);
}
