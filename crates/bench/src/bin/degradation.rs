//! Robustness extension: graceful degradation under overload and faults.
//! Sweeps fault intensity (none / moderate / heavy) for each paper
//! configuration at ~2x the grid-CWN capacity, comparing an unprotected
//! baseline against the full protection stack (token-bucket admission,
//! per-request deadlines, retry with backoff, per-region circuit
//! breakers). Not a paper table — the paper's system has no notion of
//! shedding work — but the question an overloaded load balancer lives
//! or dies by.
//!
//! ```sh
//! cargo run --release -p oracle-bench --bin degradation [--quick] [--csv] [--json]
//! ```
//!
//! Exits 1 if the sweep violates its own physics: goodput must be
//! monotone non-increasing in fault intensity and every run must
//! conserve arrivals across completed + shed + abandoned + in-flight.

use oracle::experiments::degradation;
use oracle_bench::HarnessArgs;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let args = HarnessArgs::parse_with(&["--json"]);
    let cells = degradation::run(args.fidelity, args.seed);
    if let Err(violation) = degradation::verify(&cells) {
        eprintln!("degradation sweep violated its invariants: {violation}");
        std::process::exit(1);
    }
    if json {
        println!("{}", degradation::to_json(&cells));
        return;
    }
    args.emit(&degradation::render(&cells, args.fidelity));
    if !args.csv {
        let best = cells
            .iter()
            .map(|c| c.protection_ratio())
            .filter(|r| r.is_finite() && *r > 0.0)
            .fold(0.0_f64, f64::max);
        let headline = if best > 0.0 {
            format!("best finite protection ratio {best:.1}x")
        } else {
            "protection preserved goodput in every cell where the \
             unprotected baseline preserved none"
                .to_string()
        };
        println!(
            "{} cells; {headline}; conservation and monotonicity checks \
             passed (--json for per-cell detail)",
            cells.len()
        );
    }
}
