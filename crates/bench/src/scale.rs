//! Scale benchmark: events/sec and peak RSS versus PE count.
//!
//! Where `throughput.rs` measures the hot loop on paper-sized machines,
//! this grid measures the *memory model*: a torus and a random-graph cell
//! at 10³, 10⁴, 10⁵, and 10⁶ PEs, each run `cwn` over a fixed task tree.
//! The committed `BENCH_scale.json` at the repo root records the
//! trajectory; the acceptance line is the 10⁶-PE torus completing under
//! 2 GB of peak RSS (the O(active) sparse-state regime — `StateMode::Auto`
//! flips to sparse past 64 Ki PEs, so the grid covers both
//! representations).
//!
//! `VmHWM` is a per-process monotonic high-water mark, so cells must not
//! share a process: the `scale` binary re-executes itself once per cell
//! (`--cell NAME`) and each child reports its own peak. One line of
//! `CELL {...}` JSON per child is the whole protocol.

use std::fmt::Write as _;
use std::time::Instant;

use oracle::model::{LoadInfoMode, MachineConfig};
use oracle::prelude::*;

pub use crate::throughput::peak_rss_bytes;

/// Peak-RSS budget for every cell (the acceptance bound for the 10⁶-PE
/// torus; the smaller cells sit far under it).
pub const RSS_BUDGET_BYTES: u64 = 2 * 1024 * 1024 * 1024;

/// One measured cell.
pub struct ScaleCell {
    /// Topology spec string, e.g. `torus:1000`.
    pub name: String,
    /// PE count of the topology.
    pub pes: usize,
    /// Simulated events in the run.
    pub events: u64,
    /// Wall-clock seconds for the run (machine construction included —
    /// at this scale, construction *is* part of the cost being measured).
    pub wall_secs: f64,
    /// `events / wall_secs`.
    pub events_per_sec: f64,
    /// The cell process's peak RSS in bytes (`VmHWM`).
    pub peak_rss_bytes: u64,
}

/// The benchmark grid: torus and random-graph cells at each decade.
/// `quick` keeps only the two smallest decades of each family (CI smoke).
pub fn cell_names(quick: bool) -> Vec<&'static str> {
    let all = [
        "torus:32",    // 1 024 PEs — dense representation
        "torus:100",   // 10 000 PEs — dense
        "torus:316",   // 99 856 PEs — sparse (Auto flips past 64 Ki)
        "torus:1000",  // 1 000 000 PEs — sparse, the acceptance cell
        "rand:1000x4", // random 4-regular-ish graphs, same decades
        "rand:10000x4",
        "rand:100000x4",
        "rand:1000000x4",
    ];
    all.into_iter()
        .filter(|name| !quick || cell_pes(name) <= 10_000)
        .collect()
}

/// PE count of a grid cell (parses the spec; cheap, no build).
pub fn cell_pes(name: &str) -> usize {
    name.parse::<TopologySpec>()
        .unwrap_or_else(|e| panic!("scale cell {name}: {e}"))
        .num_pes()
}

/// Run one cell in the current process and read this process's peak RSS.
///
/// The configuration is fixed: `cwn` (the paper's radius-9 parameters)
/// over `fib:20`, piggyback-only load information. Periodic load-word
/// broadcasts are off (`period: 0`) because they cost O(num PEs) events
/// per period — a time cost, not a memory one, and this grid isolates
/// memory scaling.
pub fn run_cell(name: &str, seed: u64) -> ScaleCell {
    let topology: TopologySpec = name
        .parse()
        .unwrap_or_else(|e| panic!("scale cell {name}: {e}"));
    let machine = MachineConfig {
        seed,
        load_info: LoadInfoMode::Piggyback { period: 0 },
        ..MachineConfig::default()
    };
    let config = SimulationBuilder::new()
        .topology(topology)
        .strategy(StrategySpec::Cwn {
            radius: 9,
            horizon: 1,
        })
        .workload(WorkloadSpec::fib(20))
        .machine(machine)
        .config();
    let t0 = Instant::now();
    let report = config
        .run()
        .unwrap_or_else(|e| panic!("scale cell {name}: {e}"));
    let wall_secs = t0.elapsed().as_secs_f64();
    ScaleCell {
        name: name.to_string(),
        pes: topology.num_pes(),
        events: report.events,
        wall_secs,
        events_per_sec: report.events as f64 / wall_secs.max(1e-9),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// The one-line child → parent protocol: `CELL {...}` on stdout.
pub fn cell_line(c: &ScaleCell) -> String {
    format!(
        "CELL {{\"name\": \"{}\", \"pes\": {}, \"events\": {}, \"wall_secs\": {:.6}, \
         \"events_per_sec\": {:.0}, \"peak_rss_bytes\": {}}}",
        c.name, c.pes, c.events, c.wall_secs, c.events_per_sec, c.peak_rss_bytes
    )
}

/// Parse a [`cell_line`] back (the workspace carries no JSON parser; this
/// reads the exact schema `cell_line` writes).
pub fn parse_cell_line(line: &str) -> Option<ScaleCell> {
    let body = line.strip_prefix("CELL ")?;
    let str_field = |key: &str| -> Option<String> {
        let tag = format!("\"{key}\": \"");
        let at = body.find(&tag)? + tag.len();
        let rest = &body[at..];
        Some(rest[..rest.find('"')?].to_string())
    };
    let num_field = |key: &str| -> Option<f64> {
        let tag = format!("\"{key}\": ");
        let at = body.find(&tag)? + tag.len();
        let rest = &body[at..];
        let end = rest
            .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    Some(ScaleCell {
        name: str_field("name")?,
        pes: num_field("pes")? as usize,
        events: num_field("events")? as u64,
        wall_secs: num_field("wall_secs")?,
        events_per_sec: num_field("events_per_sec")?,
        peak_rss_bytes: num_field("peak_rss_bytes")? as u64,
    })
}

/// Render the grid as the `oracle-bench-scale/v1` JSON.
pub fn to_json(cells: &[ScaleCell], seed: u64) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"oracle-bench-scale/v1\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"rss_budget_bytes\": {RSS_BUDGET_BYTES},");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"pes\": {}, \"events\": {}, \"wall_secs\": {:.6}, \
             \"events_per_sec\": {:.0}, \"peak_rss_bytes\": {}}}{comma}",
            c.name, c.pes, c.events, c.wall_secs, c.events_per_sec, c.peak_rss_bytes
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Validate a `BENCH_scale.json` blob: schema tag, well-formed cells, the
/// four torus decades present, and every recorded peak RSS within budget.
/// Returns a list of problems (empty means valid). CI runs this against
/// the committed file.
pub fn validate_json(json: &str) -> Result<(), String> {
    let mut problems = Vec::new();
    if !json.contains("\"schema\": \"oracle-bench-scale/v1\"") {
        problems.push("missing or wrong schema tag (want oracle-bench-scale/v1)".to_string());
    }
    let mut cells = Vec::new();
    for line in json.lines() {
        let trimmed = line.trim().trim_end_matches(',');
        if !trimmed.starts_with("{\"name\"") {
            continue;
        }
        match parse_cell_line(&format!("CELL {trimmed}")) {
            Some(c) => cells.push(c),
            None => problems.push(format!("malformed cell line: {trimmed}")),
        }
    }
    for want in ["torus:32", "torus:100", "torus:316", "torus:1000"] {
        if !cells.iter().any(|c| c.name == want) {
            problems.push(format!("missing torus cell {want}"));
        }
    }
    for c in &cells {
        if c.peak_rss_bytes == 0 {
            problems.push(format!("cell {}: peak RSS was not recorded", c.name));
        } else if c.peak_rss_bytes > RSS_BUDGET_BYTES {
            problems.push(format!(
                "cell {}: peak RSS {} bytes exceeds the {} byte budget",
                c.name, c.peak_rss_bytes, RSS_BUDGET_BYTES
            ));
        }
        if c.events == 0 {
            problems.push(format!("cell {}: zero events", c.name));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ScaleCell> {
        ["torus:32", "torus:100", "torus:316", "torus:1000"]
            .iter()
            .enumerate()
            .map(|(i, name)| ScaleCell {
                name: name.to_string(),
                pes: 10usize.pow(3 + i as u32),
                events: 1000,
                wall_secs: 0.5,
                events_per_sec: 2000.0,
                peak_rss_bytes: 100 << 20,
            })
            .collect()
    }

    #[test]
    fn cell_line_roundtrips() {
        for c in sample() {
            let parsed = parse_cell_line(&cell_line(&c)).expect("parse back");
            assert_eq!(parsed.name, c.name);
            assert_eq!(parsed.pes, c.pes);
            assert_eq!(parsed.events, c.events);
            assert_eq!(parsed.peak_rss_bytes, c.peak_rss_bytes);
        }
        assert!(parse_cell_line("not a cell").is_none());
    }

    #[test]
    fn json_validates_and_catches_problems() {
        let good = to_json(&sample(), 1);
        validate_json(&good).expect("well-formed grid validates");

        let mut missing = sample();
        missing.retain(|c| c.name != "torus:1000");
        let err = validate_json(&to_json(&missing, 1)).unwrap_err();
        assert!(err.contains("torus:1000"), "{err}");

        let mut fat = sample();
        fat[0].peak_rss_bytes = RSS_BUDGET_BYTES + 1;
        let err = validate_json(&to_json(&fat, 1)).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        assert!(validate_json("{}").is_err(), "empty JSON must not validate");
    }

    #[test]
    fn grid_covers_both_representations() {
        let names = cell_names(false);
        assert_eq!(names.len(), 8);
        // At least one cell each side of the Auto sparse threshold.
        assert!(names.iter().any(|n| cell_pes(n) <= 65_536));
        assert!(names.iter().any(|n| cell_pes(n) > 65_536));
        // Quick mode keeps it CI-sized.
        for name in cell_names(true) {
            assert!(cell_pes(name) <= 10_000, "{name} too big for quick");
        }
    }

    #[test]
    fn smallest_cell_runs_in_process() {
        let c = run_cell("torus:32", 1);
        assert_eq!(c.pes, 1024);
        assert!(c.events > 0);
        assert!(c.peak_rss_bytes > 0, "RSS must be readable on Linux");
    }
}
