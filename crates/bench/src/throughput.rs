//! Events/sec throughput measurement over a fixed benchmark grid.
//!
//! The grid is (workload × topology × strategy): the paper's two
//! interconnection schemes, three task-tree shapes, and both load
//! distribution methods. The headline cell — the one the tracked speedup
//! trajectory quotes — is `fib:20/grid:10/cwn`, always first.
//!
//! The committed `BENCH_throughput.json` at the repo root is the tracked
//! baseline every PR is measured against; [`check`] re-runs the grid and
//! flags any cell whose events/sec regressed beyond a tolerance. The JSON
//! is emitted and read by purpose-built code for the exact schema below —
//! the workspace deliberately carries no JSON parser.

use std::fmt::Write as _;
use std::time::Instant;

use oracle::builder::paper_strategies;
use oracle::model::QueueBackend;
use oracle::prelude::*;

/// One measured cell of the benchmark grid.
pub struct Cell {
    /// Stable cell key, e.g. `fib:20/grid:10/cwn`.
    pub name: String,
    /// Simulated events in one run.
    pub events: u64,
    /// Simulated completion time (units).
    pub completion_time: u64,
    /// Best wall-clock seconds over the repetitions (sequential engine).
    pub wall_secs: f64,
    /// `events / wall_secs` for the best repetition.
    pub events_per_sec: f64,
    /// Process peak RSS in bytes as of the end of this cell. `VmHWM` is a
    /// monotonic per-process high-water mark, so this is cumulative across
    /// the grid — the last cell's value is the run's peak.
    pub peak_rss_bytes: u64,
    /// Shard count for the parallel measurement; 1 means the cell ran on
    /// the sequential engine only.
    pub shards: usize,
    /// Best wall-clock seconds over the repetitions through the sharded
    /// engine (equal to `wall_secs` when `shards` is 1). The sharded
    /// report is checked bit-identical to the sequential one before the
    /// timing is accepted.
    pub wall_secs_parallel: f64,
}

/// The fixed benchmark grid. The `Option<OpenTraffic>` is the open-traffic
/// config — `None` for the closed (single task tree) cells — and the final
/// `usize` is the shard count (cells with more than one shard run the
/// co-processor-off configuration the parallel engine requires, and are
/// timed through both engines).
pub type GridSpec = (
    String,
    TopologySpec,
    WorkloadSpec,
    StrategySpec,
    Option<OpenTraffic>,
    usize,
);

/// The fixed benchmark grid.
pub fn grid_specs() -> Vec<GridSpec> {
    let mut specs = Vec::new();
    for (tname, topology) in [
        ("grid:10", TopologySpec::grid(10)),
        ("dlm:10", TopologySpec::dlm(10)),
    ] {
        let (cwn, gm) = paper_strategies(&topology);
        for (wname, workload) in [
            ("fib:20", WorkloadSpec::fib(20)),
            ("fib:15", WorkloadSpec::fib(15)),
            ("dc:4181", WorkloadSpec::dc(4181)),
        ] {
            for (sname, strategy) in [("cwn", cwn), ("gm", gm)] {
                specs.push((
                    format!("{wname}/{tname}/{sname}"),
                    topology,
                    workload,
                    strategy,
                    None,
                    1,
                ));
            }
        }
    }
    // One open-arrival cell: sustained Poisson traffic on the headline
    // grid, exercising the arrival/injection/sojourn-tracking hot path the
    // closed cells never touch.
    let topology = TopologySpec::grid(10);
    let (cwn, _) = paper_strategies(&topology);
    let mut open = OpenTraffic::new("poisson:20".parse().expect("fixed bench spec"), 20_000);
    open.warmup = 2_000;
    specs.push((
        "open-poisson:20-fib:11/grid:10/cwn".to_string(),
        topology,
        WorkloadSpec::fib(11),
        cwn,
        Some(open),
        1,
    ));
    // One sharded cell: a 1024-PE grid, co-processor off, timed through
    // the sequential engine and through the 8-shard parallel engine (whose
    // report must match bit-for-bit). `wall_secs_parallel` is an honest
    // reading of this machine — on a single hardware core the windowed
    // barriers cost more than they recover.
    let topology = TopologySpec::grid(32);
    let (cwn, _) = paper_strategies(&topology);
    specs.push((
        "par-fib:20/grid:32/cwn".to_string(),
        topology,
        WorkloadSpec::fib(20),
        cwn,
        None,
        8,
    ));
    // Put the headline cell first.
    specs.sort_by_key(|(name, ..)| (name != "fib:20/grid:10/cwn") as u8);
    specs
}

/// Run every cell of the grid, best-of-`reps` wall clock, printing one
/// progress line per cell to stderr.
pub fn run_grid(reps: usize, seed: u64, backend: QueueBackend) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (name, topology, workload, strategy, open, shards) in grid_specs() {
        let mut builder = SimulationBuilder::new()
            .topology(topology)
            .workload(workload)
            .strategy(strategy)
            .queue_backend(backend)
            .seed(seed)
            .open(open);
        if shards > 1 {
            // The parallel engine's eligibility contract.
            builder = builder.coprocessor(false);
        }
        let config = builder.config();
        let mut best_secs = f64::INFINITY;
        let mut report = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = config
                .run()
                .unwrap_or_else(|e| panic!("throughput cell {name}: {e}"));
            best_secs = best_secs.min(t0.elapsed().as_secs_f64());
            report = Some(r);
        }
        let report = report.expect("at least one repetition");
        let mut best_par_secs = best_secs;
        if shards > 1 {
            best_par_secs = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let (r, _) = config
                    .run_sharded(shards)
                    .unwrap_or_else(|e| panic!("throughput cell {name} ({shards} shards): {e}"));
                best_par_secs = best_par_secs.min(t0.elapsed().as_secs_f64());
                assert_eq!(
                    format!("{r:#?}"),
                    format!("{report:#?}"),
                    "throughput cell {name}: {shards}-shard report diverged from sequential"
                );
            }
        }
        let cell = Cell {
            name,
            events: report.events,
            completion_time: report.completion_time,
            wall_secs: best_secs,
            events_per_sec: report.events as f64 / best_secs.max(1e-9),
            peak_rss_bytes: peak_rss_bytes(),
            shards,
            wall_secs_parallel: best_par_secs,
        };
        eprintln!(
            "{:<24} {:>9} events  {:>8.3} ms  {:>12.0} events/s  ({} shard{}: {:.3} ms)",
            cell.name,
            cell.events,
            cell.wall_secs * 1e3,
            cell.events_per_sec,
            cell.shards,
            if cell.shards == 1 { "" } else { "s" },
            cell.wall_secs_parallel * 1e3,
        );
        cells.push(cell);
    }
    cells
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`, falling
/// back to the instantaneous `VmRSS` on kernels that omit the high-water
/// mark), or 0 where /proc is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    let field = |prefix: &str| {
        status.lines().find_map(|line| {
            let kb: u64 = line
                .strip_prefix(prefix)?
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .ok()?;
            Some(kb * 1024)
        })
    };
    field("VmHWM:").or_else(|| field("VmRSS:")).unwrap_or(0)
}

/// Render the measured cells as the `oracle-bench-throughput/v2` JSON.
/// v2 adds the per-cell `peak_rss_bytes`, `shards`, and
/// `wall_secs_parallel` fields (`wall_secs` stays the sequential reading,
/// so v1 consumers keyed on `events_per_sec` still compare like-for-like).
pub fn to_json(cells: &[Cell], reps: usize, seed: u64) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"oracle-bench-throughput/v2\",");
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"peak_rss_bytes\": {},", peak_rss_bytes());
    let _ = writeln!(s, "  \"headline\": \"{}\",", cells[0].name);
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"events\": {}, \"completion_time\": {}, \
             \"wall_secs\": {:.6}, \"events_per_sec\": {:.0}, \
             \"peak_rss_bytes\": {}, \"shards\": {}, \"wall_secs_parallel\": {:.6}}}{comma}",
            c.name,
            c.events,
            c.completion_time,
            c.wall_secs,
            c.events_per_sec,
            c.peak_rss_bytes,
            c.shards,
            c.wall_secs_parallel,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Compare fresh cells against a stored JSON baseline (matched by cell
/// name) with a `tolerance` relative regression allowance.
///
/// The pass/fail verdict is the *aggregate* grid throughput — total events
/// over total wall time. Individual cells run for single-digit
/// milliseconds, where one scheduler preemption doubles the reading;
/// summing the grid averages those spikes out and weights the verdict
/// toward the long, stable cells, so a smoke run (`--quick`) is meaningful
/// on a noisy CI box. Per-cell shortfalls still print as advisories.
/// Returns false if the aggregate regressed past `tolerance` or nothing
/// could be compared.
pub fn check(cells: &[Cell], reference: &str, tolerance: f64) -> bool {
    let mut compared = 0;
    let (mut events, mut secs, mut ref_secs) = (0u64, 0f64, 0f64);
    for c in cells {
        let Some(ref_eps) = lookup_events_per_sec(reference, &c.name) else {
            continue;
        };
        compared += 1;
        events += c.events;
        secs += c.wall_secs;
        ref_secs += c.events as f64 / ref_eps;
        if c.events_per_sec < ref_eps * (1.0 - tolerance) {
            eprintln!(
                "  slow cell {}: {:.0} events/s vs committed {:.0} (advisory)",
                c.name, c.events_per_sec, ref_eps
            );
        }
    }
    if compared == 0 {
        eprintln!("REGRESSION check: no matching cells in reference file");
        return false;
    }
    let aggregate = events as f64 / secs.max(1e-9);
    let ref_aggregate = events as f64 / ref_secs.max(1e-9);
    let floor = ref_aggregate * (1.0 - tolerance);
    let ok = aggregate >= floor;
    eprintln!(
        "checked {compared} cells: aggregate {aggregate:.0} events/s vs committed \
         {ref_aggregate:.0} (floor {floor:.0}, tolerance {:.0}%): {}",
        tolerance * 100.0,
        if ok { "ok" } else { "REGRESSED" }
    );
    ok
}

/// Extract `events_per_sec` for the named cell from [`to_json`] output.
pub fn lookup_events_per_sec(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let key = "\"events_per_sec\": ";
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let end = rest
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cells() -> Vec<Cell> {
        vec![
            Cell {
                name: "a/b/c".into(),
                events: 100,
                completion_time: 50,
                wall_secs: 0.01,
                events_per_sec: 10_000.0,
                peak_rss_bytes: 4096,
                shards: 1,
                wall_secs_parallel: 0.01,
            },
            Cell {
                name: "d/e/f".into(),
                events: 200,
                completion_time: 70,
                wall_secs: 0.02,
                events_per_sec: 10_000.0,
                peak_rss_bytes: 8192,
                shards: 8,
                wall_secs_parallel: 0.05,
            },
        ]
    }

    #[test]
    fn json_roundtrips_events_per_sec() {
        let json = to_json(&sample_cells(), 3, 1);
        assert!(json.contains("\"schema\": \"oracle-bench-throughput/v2\""));
        assert!(json.contains("\"shards\": 8, \"wall_secs_parallel\": 0.050000"));
        assert!(json.contains("\"peak_rss_bytes\": 4096"));
        assert_eq!(lookup_events_per_sec(&json, "a/b/c"), Some(10_000.0));
        assert_eq!(lookup_events_per_sec(&json, "d/e/f"), Some(10_000.0));
        assert_eq!(lookup_events_per_sec(&json, "missing"), None);
    }

    #[test]
    fn check_passes_within_tolerance_and_fails_beyond() {
        let reference = to_json(&sample_cells(), 3, 1);

        // One slow cell, aggregate -8%: within the 25% allowance (the
        // verdict is total events over total wall time, so a single noisy
        // cell cannot fail the gate on its own).
        let mut fresh = sample_cells();
        fresh[0].wall_secs = 0.0125;
        fresh[0].events_per_sec = 8_000.0;
        assert!(check(&fresh, &reference, 0.25));

        // Everything ~30% slower: aggregate regression beyond 25%.
        let mut slow = sample_cells();
        for c in &mut slow {
            c.wall_secs /= 0.7;
            c.events_per_sec *= 0.7;
        }
        assert!(!check(&slow, &reference, 0.25));
    }

    #[test]
    fn check_fails_when_nothing_matches() {
        let reference = to_json(&sample_cells(), 3, 1);
        let stranger = vec![Cell {
            name: "x/y/z".into(),
            events: 1,
            completion_time: 1,
            wall_secs: 1.0,
            events_per_sec: 1.0,
            peak_rss_bytes: 0,
            shards: 1,
            wall_secs_parallel: 1.0,
        }];
        assert!(!check(&stranger, &reference, 0.25));
    }

    #[test]
    fn headline_cell_is_first() {
        let specs = grid_specs();
        assert_eq!(specs[0].0, "fib:20/grid:10/cwn");
        assert_eq!(specs.len(), 14);
        let open: Vec<_> = specs.iter().filter(|s| s.4.is_some()).collect();
        assert_eq!(open.len(), 1, "exactly one open-arrival cell");
        assert!(open[0].0.starts_with("open-"));
        let sharded: Vec<_> = specs.iter().filter(|s| s.5 > 1).collect();
        assert_eq!(sharded.len(), 1, "exactly one sharded cell");
        assert!(sharded[0].0.starts_with("par-"));
        assert!(sharded[0].4.is_none(), "sharded cell must stay eligible");
    }
}
