//! Shared plumbing for the benchmark-harness binaries.
//!
//! Every binary regenerates one table or figure of the paper. They all
//! accept:
//!
//! * `--quick` — run the miniature (`Fidelity::Quick`) version;
//! * `--csv`   — print machine-readable CSV instead of aligned tables;
//! * `--seed N` — override the default seed (1).

use oracle::experiments::Fidelity;
use oracle::table::Table;

pub mod scale;
pub mod throughput;

/// Parsed common flags.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// Paper-scale or miniature run.
    pub fidelity: Fidelity,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// Seed for every run in the harness.
    pub seed: u64,
}

impl HarnessArgs {
    /// Parse `std::env::args`. Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        Self::parse_with(&[])
    }

    /// Parse, additionally accepting (and skipping) harness-specific flags —
    /// the caller inspects those itself via `std::env::args`.
    pub fn parse_with(extra: &[&str]) -> Self {
        let mut out = HarnessArgs {
            fidelity: Fidelity::Paper,
            csv: false,
            seed: 1,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => out.fidelity = Fidelity::Quick,
                "--csv" => out.csv = true,
                "--seed" => {
                    let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    out.seed = v.parse().unwrap_or_else(|_| usage("bad --seed value"));
                }
                "--help" | "-h" => usage(""),
                other if extra.contains(&other) => {}
                other => usage(&format!("unknown flag {other}")),
            }
        }
        out
    }

    /// Print a table in the selected format.
    pub fn emit(&self, table: &Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <harness> [--quick] [--csv] [--seed N]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_csv_path() {
        let a = HarnessArgs {
            fidelity: Fidelity::Quick,
            csv: true,
            seed: 1,
        };
        // Smoke: emitting an empty table must not panic.
        a.emit(&Table::new("t", &["x"]));
    }
}
