//! Criterion benches for the design-choice ablations: each measures one
//! simulator configuration so regressions in a specific machine-model
//! feature (software routing, load-word traffic, comm scaling) show up as
//! timing changes of that variant alone.

use criterion::{criterion_group, criterion_main, Criterion};
use oracle::model::LoadInfoMode;
use oracle::prelude::*;
use std::hint::black_box;

fn base() -> SimulationBuilder {
    SimulationBuilder::new()
        .topology(TopologySpec::grid(5))
        .strategy(StrategySpec::Cwn {
            radius: 5,
            horizon: 1,
        })
        .workload(WorkloadSpec::fib(13))
        .seed(1)
}

fn bench_load_info(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_load_info");
    g.sample_size(10);
    let modes = [
        ("instant", LoadInfoMode::Instant),
        ("piggyback_only", LoadInfoMode::Piggyback { period: 0 }),
        ("piggyback_40", LoadInfoMode::Piggyback { period: 40 }),
    ];
    for (name, mode) in modes {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = base().config();
                cfg.machine.load_info = mode;
                black_box(cfg.run().unwrap().completion_time)
            });
        });
    }
    g.finish();
}

fn bench_coprocessor(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_coprocessor");
    g.sample_size(10);
    for (name, on) in [("coprocessor", true), ("software_routing", false)] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(base().coprocessor(on).run().unwrap().completion_time));
        });
    }
    g.finish();
}

fn bench_comm_ratio(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_comm_ratio");
    g.sample_size(10);
    for scale in [1u64, 5, 10] {
        g.bench_function(format!("comm_x{scale}"), |b| {
            b.iter(|| {
                black_box(
                    base()
                        .costs(CostModel::paper_default().with_comm_scaled(scale, 1))
                        .run()
                        .unwrap()
                        .completion_time,
                )
            });
        });
    }
    g.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_strategy");
    g.sample_size(10);
    let strategies = [
        ("local", StrategySpec::Local),
        (
            "cwn",
            StrategySpec::Cwn {
                radius: 5,
                horizon: 1,
            },
        ),
        (
            "gm",
            StrategySpec::Gradient {
                low_water_mark: 1,
                high_water_mark: 2,
                interval: 20,
            },
        ),
        (
            "acwn",
            StrategySpec::AdaptiveCwn {
                radius: 5,
                horizon: 1,
                saturation: 3,
                redistribute: true,
            },
        ),
        ("steal", StrategySpec::WorkStealing { retry_delay: 40 }),
    ];
    for (name, strategy) in strategies {
        g.bench_function(name, |b| {
            b.iter(|| black_box(base().strategy(strategy).run().unwrap().completion_time));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_load_info,
    bench_coprocessor,
    bench_comm_ratio,
    bench_strategies
);
criterion_main!(benches);
