//! Criterion benches timing the table-regeneration code paths (Tables 1–3)
//! at miniature scale. The full paper-scale output comes from the
//! `table1_opt`, `table2_speedup` and `table3_hops` binaries; these benches
//! track the simulator's throughput on exactly those workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use oracle::builder::paper_strategies;
use oracle::experiments::{table1, table2, table3, Fidelity};
use oracle::prelude::*;
use std::hint::black_box;

/// One Table-2 cell (a CWN run plus a GM run) on a 64-PE grid.
fn bench_table2_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    let topology = TopologySpec::grid(8);
    let (cwn, gm) = paper_strategies(&topology);
    for (name, strategy) in [("cwn_fib13_grid64", cwn), ("gm_fib13_grid64", gm)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = SimulationBuilder::new()
                    .topology(topology)
                    .strategy(strategy)
                    .workload(WorkloadSpec::fib(13))
                    .seed(1)
                    .run()
                    .unwrap();
                black_box(r.speedup)
            });
        });
    }
    g.bench_function("quick_full_grid", |b| {
        b.iter(|| black_box(table2::run(Fidelity::Quick, 1).len()));
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("quick_hop_distributions", |b| {
        b.iter(|| {
            let d = table3::run(Fidelity::Quick, 1);
            black_box((d.cwn.avg_goal_distance, d.gm.avg_goal_distance))
        });
    });
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("quick_optimize_grid", |b| {
        b.iter(|| black_box(table1::optimize(Fidelity::Quick, true, 1).best_cwn()));
    });
    g.finish();
}

criterion_group!(benches, bench_table2_cell, bench_table3, bench_table1);
criterion_main!(benches);
