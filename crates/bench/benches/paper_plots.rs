//! Criterion benches timing the plot-regeneration code paths (Plots 1–16
//! and the hypercube appendix) at miniature scale.

use criterion::{criterion_group, criterion_main, Criterion};
use oracle::experiments::{appendix, plots, Fidelity};
use oracle::prelude::*;
use std::hint::black_box;

fn bench_util_vs_goals(c: &mut Criterion) {
    let mut g = c.benchmark_group("plots_util_vs_goals");
    g.sample_size(10);
    let workloads = plots::plot_workloads(Fidelity::Quick, false);
    for topology in [TopologySpec::grid(5), TopologySpec::dlm(5)] {
        g.bench_function(topology.to_string(), |b| {
            b.iter(|| {
                let p = plots::util_vs_goals(topology, &workloads, 1);
                black_box(p.cwn.points.len())
            });
        });
    }
    g.finish();
}

fn bench_util_vs_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("plots_util_vs_time");
    g.sample_size(10);
    for (name, topology) in [
        ("grid25_fib13", TopologySpec::grid(5)),
        ("dlm25_fib13", TopologySpec::dlm(5)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let p = plots::util_vs_time(topology, WorkloadSpec::fib(13), 50, 1);
                black_box(p.cwn.len())
            });
        });
    }
    g.finish();
}

fn bench_appendix(c: &mut Criterion) {
    let mut g = c.benchmark_group("appendix_hypercube");
    g.sample_size(10);
    g.bench_function("quick_goals_plots", |b| {
        b.iter(|| black_box(appendix::goals_plots(Fidelity::Quick, 1).len()));
    });
    g.bench_function("quick_time_plots", |b| {
        b.iter(|| black_box(appendix::time_plots(Fidelity::Quick, 1).len()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_util_vs_goals,
    bench_util_vs_time,
    bench_appendix
);
criterion_main!(benches);
