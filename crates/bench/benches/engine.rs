//! Micro-benchmarks of the simulation substrate: the event calendar, the
//! PRNG, the statistics collectors, and topology construction. These bound
//! how fast the paper experiments can run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oracle::des::{CalendarQueue, EventQueue, Histogram, IntervalSeries, Rng, SimTime};
use oracle::topo::TopologySpec;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("push_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..1000u32 {
                    q.schedule_after((i * 7 % 97) as u64, i);
                }
                while let Some((t, e)) = q.pop() {
                    black_box((t, e));
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("interleaved_hold_32", |b| {
        // The simulator's steady state: a small working set of pending
        // events with constant churn.
        b.iter_batched(
            || {
                let mut q = EventQueue::<u32>::new();
                for i in 0..32u32 {
                    q.schedule_after(i as u64, i);
                }
                q
            },
            |mut q| {
                for i in 0..1000u32 {
                    let (_, e) = q.pop().expect("queue never drains");
                    q.schedule_after((e as u64 * 13 % 61) + 1, i);
                }
                black_box(q.now())
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("calendar_interleaved_hold_32", |b| {
        // Same hold pattern on the calendar queue, for comparison.
        b.iter_batched(
            || {
                let mut q = CalendarQueue::<u32>::new();
                for i in 0..32u32 {
                    q.schedule_after(i as u64, i);
                }
                q
            },
            |mut q| {
                for i in 0..1000u32 {
                    let (_, e) = q.pop().expect("queue never drains");
                    q.schedule_after((e as u64 * 13 % 61) + 1, i);
                }
                black_box(q.now())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("next_u64_x1k", |b| {
        let mut r = Rng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= r.next_u64();
            }
            black_box(acc)
        });
    });
    g.bench_function("below_x1k", |b| {
        let mut r = Rng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc += r.below(17);
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    g.bench_function("interval_series_add_busy_x1k", |b| {
        b.iter_batched(
            || IntervalSeries::new(100),
            |mut s| {
                for i in 0..1000u64 {
                    let start = i * 37 % 10_000;
                    s.add_busy(SimTime(start), SimTime(start + 53));
                }
                black_box(s.total_busy())
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("histogram_record_x1k", |b| {
        b.iter_batched(
            || Histogram::new(64),
            |mut h| {
                for i in 0..1000u64 {
                    h.record(i * 31 % 70);
                }
                black_box(h.total())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_topology_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_build");
    g.sample_size(10);
    for spec in [
        TopologySpec::grid(20),
        TopologySpec::dlm(20),
        TopologySpec::Hypercube { dim: 7 },
    ] {
        g.bench_function(spec.to_string(), |b| {
            b.iter(|| black_box(spec.build()).diameter());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rng,
    bench_stats,
    bench_topology_build
);
criterion_main!(benches);
